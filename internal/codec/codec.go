// Package codec implements the little-endian binary format shared by all
// serializable structures in this repository.
//
// Writers and readers are error-sticky: after the first failure every
// subsequent call is a no-op, so call sites can chain field writes and check
// the error once at the end. All integers are little-endian; slices are
// length-prefixed with an unsigned varint.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt reports a malformed or truncated stream.
var ErrCorrupt = errors.New("codec: corrupt stream")

// Castagnoli is the CRC32C polynomial table shared by every checksummed
// format in this repository (hardware-accelerated on amd64/arm64).
var Castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer serializes primitive values to an underlying io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int64
	crc uint32
	sum bool // tee written bytes into crc
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Written returns the number of bytes written so far.
func (w *Writer) Written() int64 { return w.n }

// Flush flushes buffered output and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if w.sum {
		w.crc = crc32.Update(w.crc, Castagnoli, p)
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// StartChecksum begins teeing every subsequently written byte into a
// CRC32C accumulator. Checksummed container formats bracket each section
// with StartChecksum/StopChecksum, so the hash covers exactly the
// section's logical bytes at O(1) extra memory.
func (w *Writer) StartChecksum() {
	w.crc = 0
	w.sum = true
}

// StopChecksum ends the checksummed span and returns its CRC32C. The
// checksum field itself is written after the call, so it is never
// self-referential.
func (w *Writer) StopChecksum() uint32 {
	w.sum = false
	return w.crc
}

// Uint64 writes v as 8 little-endian bytes.
func (w *Writer) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.write(b[:])
}

// Uint32 writes v as 4 little-endian bytes.
func (w *Writer) Uint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.write(b[:])
}

// Byte writes a single byte.
func (w *Writer) Byte(v byte) {
	w.write([]byte{v})
}

// Uvarint writes v using variable-length encoding.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Uint64s writes a length-prefixed slice of raw little-endian words.
func (w *Writer) Uint64s(s []uint64) {
	w.Uvarint(uint64(len(s)))
	var b [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(b[:], v)
		w.write(b[:])
	}
}

// Uint32s writes a length-prefixed slice of raw little-endian 32-bit words.
func (w *Writer) Uint32s(s []uint32) {
	w.Uvarint(uint64(len(s)))
	var b [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[:], v)
		w.write(b[:])
	}
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.write([]byte(s))
}

// Reader deserializes values written by Writer.
type Reader struct {
	r     *bufio.Reader
	n     int64
	crc   uint32
	sum   bool  // tee consumed bytes into crc
	limit int64 // alloc bound: total input size, or -1 for unbounded
	err   error
}

// NewReader returns a Reader consuming from r. If r is already a
// *bufio.Reader it is used directly, so several sequential decoders can
// share one buffered stream without losing read-ahead bytes.
func NewReader(r io.Reader) *Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return &Reader{r: br, limit: -1}
	}
	return &Reader{r: bufio.NewReader(r), limit: -1}
}

// SetAllocLimit bounds decode-time slice allocations by the total input
// size in bytes: a length-prefixed slice cannot hold more payload bytes
// than the stream has left, so a corrupt length prefix fails immediately
// instead of demanding gigabytes. Pass the file or section size; a
// negative limit restores the default static bound.
func (r *Reader) SetAllocLimit(size int64) { r.limit = size }

// StartChecksum begins teeing every subsequently consumed byte into a
// CRC32C accumulator; the mirror of Writer.StartChecksum.
func (r *Reader) StartChecksum() {
	r.crc = 0
	r.sum = true
}

// StopChecksum ends the checksummed span and returns its CRC32C. The
// stored checksum field is read after the call, outside the span.
func (r *Reader) StopChecksum() uint32 {
	r.sum = false
	return r.crc
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Read returns the number of bytes consumed so far.
func (r *Reader) Read() int64 { return r.n }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	n, err := io.ReadFull(r.r, p)
	r.n += int64(n)
	if r.sum {
		r.crc = crc32.Update(r.crc, Castagnoli, p[:n])
	}
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// Uint64 reads 8 little-endian bytes.
func (r *Reader) Uint64() uint64 {
	var b [8]byte
	r.read(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Uint32 reads 4 little-endian bytes.
func (r *Reader) Uint32() uint32 {
	var b [4]byte
	r.read(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	var b [1]byte
	r.read(b[:])
	return b[0]
}

// Uvarint reads a variable-length unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(countingByteReader{r})
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	return v
}

type countingByteReader struct{ r *Reader }

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.r.r.ReadByte()
	if err == nil {
		c.r.n++
		if c.r.sum {
			c.r.crc = crc32.Update(c.r.crc, Castagnoli, []byte{b})
		}
	}
	return b, err
}

// maxAlloc bounds a single slice allocation while decoding, protecting
// against corrupt length prefixes.
const maxAlloc = 1 << 33

func (r *Reader) sliceLen(elemSize uint64) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n*elemSize > maxAlloc || n > maxAlloc {
		r.err = fmt.Errorf("%w: slice length %d too large", ErrCorrupt, n)
		return 0
	}
	// A slice's payload cannot exceed the bytes the input has left: with
	// the input size known, a corrupt length prefix is rejected before
	// the allocation instead of after an OOM-sized make.
	if r.limit >= 0 && int64(n*elemSize) > r.limit-r.n {
		r.err = fmt.Errorf("%w: slice length %d (%d bytes) exceeds remaining input (%d bytes)",
			ErrCorrupt, n, n*elemSize, r.limit-r.n)
		return 0
	}
	return int(n)
}

// Uint64s reads a length-prefixed slice of raw little-endian words.
func (r *Reader) Uint64s() []uint64 {
	n := r.sliceLen(8)
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]uint64, n)
	var b [8]byte
	for i := range s {
		r.read(b[:])
		if r.err != nil {
			return nil
		}
		s[i] = binary.LittleEndian.Uint64(b[:])
	}
	return s
}

// Uint32s reads a length-prefixed slice of raw little-endian 32-bit words.
func (r *Reader) Uint32s() []uint32 {
	n := r.sliceLen(4)
	if r.err != nil || n == 0 {
		return nil
	}
	s := make([]uint32, n)
	var b [4]byte
	for i := range s {
		r.read(b[:])
		if r.err != nil {
			return nil
		}
		s[i] = binary.LittleEndian.Uint32(b[:])
	}
	return s
}

// BytesBuf reads a length-prefixed byte slice.
func (r *Reader) BytesBuf() []byte {
	n := r.sliceLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	if r.err != nil {
		return nil
	}
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.BytesBuf())
}

// Fail records err (if the reader has not already failed) and returns it.
func (r *Reader) Fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}
