package server

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU map used for both the result cache
// (normalized query text -> serialized NDJSON response) and the plan
// cache (normalized BGP text -> evaluation order). Entries are evicted
// least-recently-used once cap is exceeded; a zero or negative cap
// disables the cache entirely (every Get misses, every Put is dropped).
type lruCache[V any] struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	m            map[string]*list.Element
	hits, misses uint64
	flushes      uint64 // Clear calls: one per changing write (generation bump)
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil || c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts or refreshes a value, evicting the LRU entry when full.
func (c *lruCache[V]) Put(key string, val V) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry[V]).key)
	}
}

// Clear drops every cached entry (write invalidation); the hit/miss
// counters survive.
func (c *lruCache[V]) Clear() {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
	c.flushes++
}

// Len returns the number of cached entries.
func (c *lruCache[V]) Len() int {
	if c == nil || c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns the hit/miss totals.
func (c *lruCache[V]) Counters() (hits, misses uint64) {
	if c == nil || c.cap <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Flushes returns the number of Clear calls — per-generation flushes
// under write invalidation.
func (c *lruCache[V]) Flushes() uint64 {
	if c == nil || c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushes
}
