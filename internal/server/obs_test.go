package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfindexes/internal/obs"
)

// metricValue sums the parsed samples matching name and label subset.
func metricValue(samples []obs.Sample, name string, labels map[string]string) (float64, bool) {
	sum, found := 0.0, false
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			sum += s.Value
			found = true
		}
	}
	return sum, found
}

// TestMetricsEndpoint is the /metrics smoke test: after real traffic
// the scrape must parse under the minimal Prometheus parser and carry
// the counter, histogram and gauge families with values consistent
// with the traffic served.
func TestMetricsEndpoint(t *testing.T) {
	st := testStore(t, 40, 3)
	ts := httptest.NewServer(New(st, Options{Workers: 4}))
	defer ts.Close()

	// Two identical protocol queries: a miss then a result-cache hit.
	for i := 0; i < 2; i++ {
		resp, _ := protocolGet(t, ts, knowsQuery, "application/sparql-results+json")
		if resp.StatusCode != 200 {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	// One failed request.
	if resp, _ := get(t, ts, "/sparql"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query: %d", resp.StatusCode)
	}

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, body)
	}

	if v, ok := metricValue(samples, "rdf_requests_total", map[string]string{"endpoint": "sparql"}); !ok || v != 3 {
		t.Errorf("sparql requests = %v (found %v), want 3", v, ok)
	}
	if v, ok := metricValue(samples, "rdf_failed_total", nil); !ok || v < 1 {
		t.Errorf("failed = %v, want >= 1", v)
	}
	if v, ok := metricValue(samples, "rdf_request_duration_seconds_count", nil); !ok || v != 2 {
		t.Errorf("request histogram count = %v, want 2 (error requests unobserved)", v)
	}
	// Stage histograms exist for every stage; exec observed at least the
	// cache-miss request.
	if v, ok := metricValue(samples, "rdf_stage_duration_seconds_count", map[string]string{"stage": "exec"}); !ok || v < 1 {
		t.Errorf("exec stage count = %v, want >= 1", v)
	}
	if v, ok := metricValue(samples, "rdf_cache_events_total", map[string]string{"cache": "result", "event": "hit"}); !ok || v != 1 {
		t.Errorf("result cache hits = %v, want 1", v)
	}
	if v, ok := metricValue(samples, "rdf_cache_events_total", map[string]string{"cache": "plan", "event": "miss"}); !ok || v != 1 {
		t.Errorf("plan cache misses = %v, want 1", v)
	}
	for _, g := range []string{"rdf_goroutines", "rdf_heap_inuse_bytes", "rdf_store_triples"} {
		if v, ok := metricValue(samples, g, nil); !ok || v <= 0 {
			t.Errorf("%s = %v (found %v), want > 0", g, v, ok)
		}
	}
	for _, g := range []string{"rdf_store_generation", "rdf_wal_bytes", "rdf_quarantined_shards", "rdf_breaker_open", "rdf_in_flight_requests"} {
		if _, ok := metricValue(samples, g, nil); !ok {
			t.Errorf("%s missing from scrape", g)
		}
	}

	// The same histogram feeds /stats percentiles.
	sresp, sbody := get(t, ts, "/stats")
	if sresp.StatusCode != 200 {
		t.Fatalf("/stats: %d", sresp.StatusCode)
	}
	var stats Stats
	if err := json.Unmarshal([]byte(sbody), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RequestP50Ms <= 0 || stats.RequestP99Ms < stats.RequestP50Ms {
		t.Errorf("percentiles p50=%v p99=%v", stats.RequestP50Ms, stats.RequestP99Ms)
	}
	if stats.PlanMisses != 1 || stats.CacheHits != 1 {
		t.Errorf("stats plan misses %d / cache hits %d, want 1 / 1", stats.PlanMisses, stats.CacheHits)
	}
}

// TestExplainEndpoint runs ?explain=1 against the plain, sharded and
// mutable (overlay view) store variants: the response is the execution
// profile, not serialized results, and its cardinalities are
// self-consistent.
func TestExplainEndpoint(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 24, 3, 0)
	// Pending writes put the mutable server on a real overlay view.
	if _, err := m.Insert("<http://ex/extra>", "<http://ex/knows>", "<http://ex/p0>"); err != nil {
		t.Fatal(err)
	}
	servers := map[string]*Server{
		"plain":   New(testStore(t, 24, 3), Options{Workers: 2}),
		"sharded": New(testShardedStore(t, 24, 3, 4), Options{Workers: 2}),
		"overlay": NewMutable(m, Options{Workers: 2}),
	}
	query := "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/likes> ?i . }"
	for name, srv := range servers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(srv)
			defer ts.Close()

			// Reference run without explain for the row count.
			resp, body := protocolGet(t, ts, query, "application/sparql-results+json")
			if resp.StatusCode != 200 {
				t.Fatalf("reference query: %d %s", resp.StatusCode, body)
			}
			_, rows := jsonBindings(t, body)

			req, _ := http.NewRequest(http.MethodGet,
				ts.URL+"/sparql?explain=1&query="+url.QueryEscape(query), nil)
			resp, body = do(t, req)
			if resp.StatusCode != 200 {
				t.Fatalf("explain: %d %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("explain Content-Type = %q", ct)
			}
			var doc struct {
				Generation int   `json:"generation"`
				Order      []int `json:"plan_order"`
				PlanCached bool  `json:"plan_cached"`
				Steps      []struct {
					Position int    `json:"position"`
					Pattern  int    `json:"pattern"`
					Text     string `json:"text"`
					Calls    uint64 `json:"calls"`
					Scanned  uint64 `json:"scanned"`
					Matched  uint64 `json:"matched"`
				} `json:"steps"`
				Rows     int                `json:"rows"`
				StagesUs map[string]float64 `json:"stages_us"`
				TotalUs  float64            `json:"total_us"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("explain body is not the profile doc: %v\n%s", err, body)
			}
			if strings.Contains(string(body), `"bindings"`) {
				t.Error("explain response contains serialized results")
			}
			if doc.Rows != len(rows) {
				t.Errorf("explain rows %d != query rows %d", doc.Rows, len(rows))
			}
			if len(doc.Order) != 2 || len(doc.Steps) != 2 {
				t.Fatalf("plan order %v / %d steps, want 2 patterns", doc.Order, len(doc.Steps))
			}
			var scanned uint64
			for _, step := range doc.Steps {
				if step.Matched > step.Scanned {
					t.Errorf("step %d: matched %d > scanned %d", step.Position, step.Matched, step.Scanned)
				}
				if step.Text == "" || step.Calls == 0 {
					t.Errorf("step %d incomplete: %+v", step.Position, step)
				}
				scanned += step.Scanned
			}
			if scanned == 0 {
				t.Error("no candidates recorded")
			}
			if doc.TotalUs <= 0 || doc.StagesUs["exec"] < 0 {
				t.Errorf("timings total=%v stages=%v", doc.TotalUs, doc.StagesUs)
			}
			// The plan cache is shared with the reference run.
			if !doc.PlanCached {
				t.Error("explain did not reuse the cached plan")
			}
		})
	}
}

// TestProtocolHeadAndLastModified covers the HEAD form and the
// Last-Modified/If-Modified-Since validator pair on a mutable store
// (whose views carry their publication time).
func TestProtocolHeadAndLastModified(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 12, 2, 0)
	ts := httptest.NewServer(NewMutable(m, Options{Workers: 2}))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, body := do(t, req)
	if resp.StatusCode != 200 {
		t.Fatalf("HEAD: %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("HEAD carried a body: %q", body)
	}
	lm := resp.Header.Get("Last-Modified")
	if lm == "" || resp.Header.Get("ETag") == "" {
		t.Fatalf("HEAD validators missing: Last-Modified=%q ETag=%q", lm, resp.Header.Get("ETag"))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/sparql-results+json") {
		t.Errorf("HEAD Content-Type = %q", ct)
	}
	if _, err := http.ParseTime(lm); err != nil {
		t.Fatalf("Last-Modified %q unparseable: %v", lm, err)
	}

	// A conditional GET with the served validator revalidates.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
	req.Header.Set("If-Modified-Since", lm)
	resp, _ = do(t, req)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Modified-Since %q: status %d, want 304", lm, resp.StatusCode)
	}

	// A write publishes a fresh view; HTTP dates have one-second
	// granularity, so step past it before writing.
	time.Sleep(1100 * time.Millisecond)
	if _, err := m.Insert("<http://ex/new>", "<http://ex/knows>", "<http://ex/p0>"); err != nil {
		t.Fatal(err)
	}
	resp, _ = do(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after write: status %d, want 200", resp.StatusCode)
	}

	// HEAD on a malformed request still reports the failure status.
	req, _ = http.NewRequest(http.MethodHead, ts.URL+"/sparql", nil)
	resp, _ = do(t, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HEAD without query: %d, want 400", resp.StatusCode)
	}
}

// TestServerTiming checks the pre-stream Server-Timing header and the
// post-stream trailer on a response large enough to stream chunked.
func TestServerTiming(t *testing.T) {
	st := testStore(t, 200, 6)
	ts := httptest.NewServer(New(st, Options{Workers: 2}))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, _ := do(t, req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	stHeader := resp.Header.Get("Server-Timing")
	for _, want := range []string{`cache;desc="miss"`, "queue;dur=", "parse;dur=", "plan;dur="} {
		if !strings.Contains(stHeader, want) {
			t.Errorf("Server-Timing %q missing %q", stHeader, want)
		}
	}
	// The exec/render/total stages arrive as a trailer after the chunked
	// body. Go's HTTP/1 client drops trailers that were not announced in
	// a Trailer header (announcing would strip the pre-stream
	// Server-Timing header), so read the raw bytes off a plain socket.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A distinct query text, so this lands on the miss path (the hit
	// path answers from the cached body and has no post-stream stages).
	fmt.Fprintf(conn, "GET /sparql?query=%s HTTP/1.1\r\nHost: t\r\nTE: trailers\r\nConnection: close\r\n\r\n",
		url.QueryEscape("SELECT ?a ?b WHERE { ?a <http://ex/knows> ?b . }"))
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	// The trailer block follows the terminating 0-length chunk.
	_, trailer, found := strings.Cut(string(raw), "\r\n0\r\n")
	if !found {
		t.Fatalf("response not chunked:\n%.300s", raw)
	}
	for _, want := range []string{"Server-Timing:", "exec;dur=", "render;dur=", "total;dur="} {
		if !strings.Contains(trailer, want) {
			t.Errorf("trailer block %q missing %q", trailer, want)
		}
	}

	// Cache hits say so.
	resp, _ = do(t, req)
	if got := resp.Header.Get("Server-Timing"); !strings.Contains(got, `cache;desc="hit"`) {
		t.Errorf("hit Server-Timing = %q", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog checks the log fires only past the threshold: a
// sub-threshold server logs nothing, a 1ns-threshold server logs the
// same query as a structured entry.
func TestSlowQueryLog(t *testing.T) {
	st := testStore(t, 40, 3)

	var quiet syncBuffer
	fast := httptest.NewServer(New(st, Options{Workers: 2, SlowQuery: time.Hour, SlowQueryLog: &quiet}))
	defer fast.Close()
	if resp, _ := protocolGet(t, fast, knowsQuery, ""); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := quiet.String(); got != "" {
		t.Fatalf("sub-threshold query logged: %q", got)
	}

	var loud syncBuffer
	slow := httptest.NewServer(New(st, Options{Workers: 2, SlowQuery: time.Nanosecond, SlowQueryLog: &loud}))
	defer slow.Close()
	if resp, _ := protocolGet(t, slow, knowsQuery, ""); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entry obs.SlowQuery
	if err := json.Unmarshal([]byte(loud.String()), &entry); err != nil {
		t.Fatalf("slow log entry is not JSON: %v (%q)", err, loud.String())
	}
	if entry.Kind != "slow_query" || entry.Endpoint != "sparql" || entry.Query != knowsQuery {
		t.Errorf("entry = %+v", entry)
	}
	if entry.DurationMs <= 0 || entry.StagesUs == nil {
		t.Errorf("entry missing timing: %+v", entry)
	}
	// /stats surfaces the count.
	_, sbody := get(t, slow, "/stats")
	var stats Stats
	if err := json.Unmarshal([]byte(sbody), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.SlowQueries != 1 {
		t.Errorf("stats slow queries = %d, want 1", stats.SlowQueries)
	}
}
