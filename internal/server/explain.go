package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/obs"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/store"
)

// The ?explain=1 protocol extension: the query executes normally —
// same planner, same caches for the plan, same row limit — but the
// response is a JSON profile of the execution instead of serialized
// results: the evaluation order, per-operator cardinalities (candidates
// scanned vs matched at each plan position, with merge-intersection
// steps flagged) and the stage timing breakdown. It is the harness for
// "why is this query slow": the scanned/matched ratio per step shows
// which pattern does the wasted work, and gallop steps show where the
// join optimization engages.

// explainStep is one plan position in the explain document.
type explainStep struct {
	// Position is the step's index in the evaluation order; Pattern the
	// index of the triple pattern it evaluates, as written in the query
	// — the key for correlating a step with the verbatim query text.
	// Text renders the pattern's shape with constants as resolved
	// dictionary IDs (the original term spellings are not retained past
	// parsing).
	Position int    `json:"position"`
	Pattern  int    `json:"pattern"`
	Text     string `json:"text"`
	// Calls counts how many times the step (re-)issued its selection —
	// once per binding row arriving from the steps above it.
	Calls   uint64 `json:"calls"`
	Scanned uint64 `json:"scanned"`
	Matched uint64 `json:"matched"`
	// Gallop marks a step resolved inside a leapfrog merge-intersection;
	// Scanned then counts stream advances, not enumerated candidates.
	Gallop bool `json:"gallop,omitempty"`
}

// explainDoc is the ?explain=1 response body.
type explainDoc struct {
	Query      string        `json:"query"`
	Generation uint64        `json:"generation"`
	Order      []int         `json:"plan_order"`
	PlanCached bool          `json:"plan_cached"`
	Steps      []explainStep `json:"steps"`
	// PatternsIssued/TriplesMatched are the executor's aggregate stats
	// (the paper's Table 6 decomposition measure); Rows the solution
	// count under the requested limit.
	PatternsIssued int                `json:"patterns_issued"`
	TriplesMatched int                `json:"triples_matched"`
	Rows           int                `json:"rows"`
	Truncated      bool               `json:"truncated,omitempty"`
	Error          string             `json:"error,omitempty"`
	StagesUs       map[string]float64 `json:"stages_us"`
	TotalUs        float64            `json:"total_us"`
}

// serveExplain executes q with per-step recording armed and answers the
// profile document. The result cache is bypassed in both directions: an
// explain request wants fresh measurements, and its volatile timings
// must not shadow a cacheable result body.
func (s *Server) serveExplain(ctx context.Context, w http.ResponseWriter, st *store.Store, gen uint64,
	qs string, q sparql.Query, order []int, planCached bool, limit int, qc *core.QueryCtx, tr *obs.Trace, t0 time.Time) {
	tr.EnableSteps(len(order))
	execCtx, stop := context.WithCancel(ctx)
	defer stop()
	et := time.Now()
	rows, truncated := 0, false
	stats, err := sparql.StreamTraced(execCtx, q, ctxStore{x: st.Index, qc: qc}, order, tr, func(sparql.Bindings) {
		if limit >= 0 && rows >= limit {
			if !truncated {
				truncated = true
				stop()
			}
			return
		}
		rows++
	})
	tr.AddStage(obs.StageExec, time.Since(et))

	doc := explainDoc{
		Query:          qs,
		Generation:     gen,
		Order:          order,
		PlanCached:     planCached,
		Steps:          make([]explainStep, 0, len(order)),
		PatternsIssued: stats.PatternsIssued,
		TriplesMatched: stats.TriplesMatched,
		Rows:           rows,
		Truncated:      truncated,
	}
	if err != nil && !truncated {
		s.failed.Add(1)
		doc.Error = err.Error()
	}
	for pos, ps := range tr.Steps() {
		step := explainStep{
			Position: pos,
			Pattern:  ps.Pattern,
			Calls:    ps.Calls,
			Scanned:  ps.Scanned,
			Matched:  ps.Matched,
			Gallop:   ps.Gallop,
		}
		if ps.Pattern >= 0 && ps.Pattern < len(q.Patterns) {
			step.Text = q.Patterns[ps.Pattern].String()
		}
		doc.Steps = append(doc.Steps, step)
	}

	rt := time.Now()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Stage timings are snapshotted into the document before encoding;
	// the encode itself is the render stage and lands only in the
	// histograms and the slow log.
	doc.StagesUs = make(map[string]float64, obs.NumStages)
	for i := 0; i < obs.NumStages; i++ {
		doc.StagesUs[obs.Stage(i).String()] = float64(tr.Stages[i]) / 1e3
	}
	doc.TotalUs = float64(time.Since(t0)) / 1e3
	encErr := enc.Encode(doc)
	tr.AddStage(obs.StageRender, time.Since(rt))
	_ = encErr

	total := time.Since(t0)
	s.observeRequest(tr, total)
	s.slow.Record("sparql-explain", qs, gen, rows, truncated, doc.Error, total, tr)
}
