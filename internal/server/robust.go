package server

import (
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// clientKey identifies the client for rate limiting: the first address
// in X-Forwarded-For when present (the server is expected to sit behind
// a trusted proxy when that header matters), else the connection's
// remote IP with the port stripped — one browser opening many
// connections is still one client.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		if key := strings.TrimSpace(xff); key != "" {
			return key
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter implements per-client token buckets: each client earns
// rate tokens per second up to burst, one request costs one token. State
// is O(clients) with stale entries evicted once the table grows past
// maxClients, so an address-spraying client cannot balloon memory.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// maxClients bounds the limiter table; eviction drops the longest-idle
// entries, which by construction are the ones closest to a full bucket
// (an evicted-and-returning client is treated as fresh, i.e. leniently).
const maxClients = 16384

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports the whole seconds to wait until a token accrues (at least 1,
// for the Retry-After header).
func (rl *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxClients {
			rl.evictLocked(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / rl.rate
	return false, int(math.Max(1, math.Ceil(wait)))
}

// evictLocked drops entries idle long enough to have refilled
// completely — forgetting them loses no information — and, if none
// qualify, clears the table outright (strictly more lenient than
// keeping it).
func (rl *rateLimiter) evictLocked(now time.Time) {
	full := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range rl.buckets {
		if now.Sub(b.last) >= full {
			delete(rl.buckets, k)
		}
	}
	if len(rl.buckets) >= maxClients {
		rl.buckets = make(map[string]*bucket)
	}
}

// breaker is a circuit breaker over the write path. Consecutive
// internal write failures (WAL I/O, merge errors — not the client's bad
// terms) suggest the disk or the store is unhealthy; after threshold of
// them the breaker opens and writes fail fast with 503 + Retry-After
// instead of each discovering the same broken fsync at its own pace.
// After cooldown one probe write is let through (half-open): success
// closes the breaker, failure re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a write may proceed; when denied it returns the
// seconds to advertise in Retry-After.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, retrySeconds(b.openUntil.Sub(now))
	}
	if b.probing {
		// One probe is already in flight; everyone else keeps waiting.
		return false, retrySeconds(b.cooldown)
	}
	b.probing = true
	return true, 0
}

// result records a write's outcome. Client-fault failures (bad terms)
// pass neutral=true: they say nothing about the store's health and
// neither trip nor reset the breaker.
func (b *breaker) result(failed, neutral bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	if neutral {
		return
	}
	if !failed {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold || wasProbe {
		b.openUntil = now.Add(b.cooldown)
	}
}

// open reports whether the breaker is currently rejecting writes.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive >= b.threshold && (now.Before(b.openUntil) || b.probing)
}

// retrySeconds renders a wait as whole seconds, at least 1 — a
// Retry-After of 0 invites an immediate retry storm.
func retrySeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// setRetryAfter stamps a jittered Retry-After: base seconds plus up to
// base more, so a burst of clients rejected together (pool saturation,
// breaker opening, a replica mid-catch-up) does not come back as one
// synchronized stampede at exactly base seconds. base is the minimum
// honest wait; the header may only ever ask clients to be later, never
// earlier.
func setRetryAfter(w http.ResponseWriter, base int) {
	if base < 1 {
		base = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(base+rand.IntN(base+1)))
}

// limited wraps a handler with the per-client rate limit. Disabled (nil
// limiter) passes through.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if ok, retry := s.limiter.allow(clientKey(r), s.now()); !ok {
			s.rejectedRate.Add(1)
			setRetryAfter(w, retry)
			httpError(w, http.StatusTooManyRequests, errRateLimited)
			return
		}
		h(w, r)
	}
}
