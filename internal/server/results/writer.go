package results

import (
	"io"
	"sync"

	"rdfindexes/internal/core"
	"rdfindexes/internal/store"
)

// span is one cached encoded term inside the writer's arena.
type span struct{ start, end int }

// flushAt is the pending-output size that triggers a flush to the
// underlying writer, batching syscalls exactly like the NDJSON path.
const flushAt = 8 << 10

// maxCachedTerms bounds the per-request encoded-term cache; streams
// wider than this render the overflow terms directly without caching.
const maxCachedTerms = 1 << 14

// trimCap is the largest buffer capacity a pooled writer retains across
// requests; pathological growth beyond it is released to the GC.
const trimCap = 1 << 20

// Writer streams one SPARQL result set in one of the four standard
// formats. It is built exactly like store.NDJSONWriter: rows are
// hand-assembled into a batched output buffer, terms resolve through the
// pooled dictionary cursors of a store.Renderer, and each distinct ID is
// format-encoded once per request and replayed from an arena cache after
// that — the steady-state row path performs no allocations in any
// format. A Writer serves one request on one goroutine; the sequence is
// Begin, any number of WriteSolution, End, Flush, Release.
type Writer struct {
	f    Format
	w    io.Writer
	rend *store.Renderer
	err  error

	buf   []byte // pending output
	raw   []byte // raw N-Triples term scratch
	val   []byte // unescaped literal value scratch
	arena []byte // encoded-term cache backing
	cache map[core.ID]span

	vars   []string
	keybuf []byte // per-variable key fragments back to back
	keyoff []span
	nrows  int
}

var writerPool = sync.Pool{New: func() any {
	return &Writer{cache: map[core.ID]span{}}
}}

// Acquire takes a pooled writer streaming format f to w, with terms
// resolved against st's dictionaries (integer-only stores render the
// documented <id> fallback notation).
func Acquire(f Format, st *store.Store, w io.Writer) *Writer {
	wr := writerPool.Get().(*Writer)
	wr.f = f
	wr.w = w
	wr.rend = store.AcquireRenderer(st)
	wr.err = nil
	wr.nrows = 0
	//rdf:allow(ownership transfers to the caller; Release returns it to the pool)
	return wr
}

// Release clears the per-request state and returns the writer to the
// pool. Call Flush first; Release drops any pending bytes.
func (wr *Writer) Release() {
	if wr == nil {
		return
	}
	wr.rend.Release()
	wr.rend, wr.w = nil, nil
	clear(wr.cache)
	wr.buf = trim(wr.buf)
	wr.raw = trim(wr.raw)
	wr.val = trim(wr.val)
	wr.arena = trim(wr.arena)
	wr.keybuf = trim(wr.keybuf)
	wr.vars = wr.vars[:0]
	wr.keyoff = wr.keyoff[:0]
	writerPool.Put(wr)
}

func trim(b []byte) []byte {
	if cap(b) > trimCap {
		return nil
	}
	return b[:0]
}

// Format returns the format the writer was acquired for.
func (wr *Writer) Format() Format { return wr.f }

// Rows returns the number of solutions written so far.
func (wr *Writer) Rows() int { return wr.nrows }

// Err returns the sticky stream error.
func (wr *Writer) Err() error { return wr.err }

// Flush writes any pending bytes to the underlying writer and reports
// the first write error seen on this stream.
func (wr *Writer) Flush() error {
	if len(wr.buf) > 0 && wr.err == nil {
		_, wr.err = wr.w.Write(wr.buf)
	}
	wr.buf = wr.buf[:0]
	return wr.err
}

func (wr *Writer) maybeFlush() {
	if len(wr.buf) >= flushAt {
		wr.Flush()
	}
}

// Begin writes the result set header and fixes the variable set and
// order of the subsequent WriteSolution rows, pre-encoding every
// per-variable key fragment once.
func (wr *Writer) Begin(vars []string) {
	wr.vars = append(wr.vars[:0], vars...)
	wr.keybuf = wr.keybuf[:0]
	wr.keyoff = wr.keyoff[:0]
	switch wr.f {
	case JSON:
		wr.buf = append(wr.buf, `{"head":{"vars":[`...)
		for i, v := range vars {
			if i > 0 {
				wr.buf = append(wr.buf, ',')
			}
			wr.raw = append(wr.raw[:0], v...)
			wr.buf = appendJSONString(wr.buf, wr.raw)
			start := len(wr.keybuf)
			wr.keybuf = appendJSONString(wr.keybuf, wr.raw)
			wr.keybuf = append(wr.keybuf, ':')
			wr.keyoff = append(wr.keyoff, span{start, len(wr.keybuf)})
		}
		wr.buf = append(wr.buf, `]},"results":{"bindings":[`...)
	case XML:
		wr.buf = append(wr.buf, xmlHeader...)
		for _, v := range vars {
			wr.raw = append(wr.raw[:0], v...)
			wr.buf = append(wr.buf, `<variable name="`...)
			wr.buf = appendXMLAttr(wr.buf, wr.raw)
			wr.buf = append(wr.buf, `"/>`...)
			start := len(wr.keybuf)
			wr.keybuf = append(wr.keybuf, `<binding name="`...)
			wr.keybuf = appendXMLAttr(wr.keybuf, wr.raw)
			wr.keybuf = append(wr.keybuf, '"', '>')
			wr.keyoff = append(wr.keyoff, span{start, len(wr.keybuf)})
		}
		wr.buf = append(wr.buf, `</head><results>`...)
	case CSV:
		for i, v := range vars {
			if i > 0 {
				wr.buf = append(wr.buf, ',')
			}
			wr.raw = append(wr.raw[:0], v...)
			wr.buf = appendCSVField(wr.buf, wr.raw)
		}
		wr.buf = append(wr.buf, '\r', '\n')
	case TSV:
		for i, v := range vars {
			if i > 0 {
				wr.buf = append(wr.buf, '\t')
			}
			wr.buf = append(wr.buf, '?')
			wr.buf = append(wr.buf, v...)
		}
		wr.buf = append(wr.buf, '\n')
	}
	wr.maybeFlush()
}

const xmlHeader = `<?xml version="1.0"?>` + "\n" +
	`<sparql xmlns="http://www.w3.org/2005/sparql-results#"><head>`

// WriteSolution emits one solution row over the Begin variables.
// Variables absent from b are omitted (JSON/XML) or left as empty fields
// (CSV/TSV), per each format's specification.
//
//rdf:hotpath
func (wr *Writer) WriteSolution(b map[string]core.ID) {
	switch wr.f {
	case JSON:
		if wr.nrows > 0 {
			wr.buf = append(wr.buf, ',')
		}
		wr.buf = append(wr.buf, '{')
		first := true
		for i, v := range wr.vars {
			id, ok := b[v]
			if !ok {
				continue
			}
			if !first {
				wr.buf = append(wr.buf, ',')
			}
			first = false
			sp := wr.keyoff[i]
			wr.buf = append(wr.buf, wr.keybuf[sp.start:sp.end]...)
			wr.appendTerm(id)
		}
		wr.buf = append(wr.buf, '}')
	case XML:
		wr.buf = append(wr.buf, `<result>`...)
		for i, v := range wr.vars {
			id, ok := b[v]
			if !ok {
				continue
			}
			sp := wr.keyoff[i]
			wr.buf = append(wr.buf, wr.keybuf[sp.start:sp.end]...)
			wr.appendTerm(id)
			wr.buf = append(wr.buf, `</binding>`...)
		}
		wr.buf = append(wr.buf, `</result>`...)
	case CSV:
		for i, v := range wr.vars {
			if i > 0 {
				wr.buf = append(wr.buf, ',')
			}
			if id, ok := b[v]; ok {
				wr.appendTerm(id)
			}
		}
		wr.buf = append(wr.buf, '\r', '\n')
	case TSV:
		for i, v := range wr.vars {
			if i > 0 {
				wr.buf = append(wr.buf, '\t')
			}
			if id, ok := b[v]; ok {
				wr.appendTerm(id)
			}
		}
		wr.buf = append(wr.buf, '\n')
	}
	wr.nrows++
	wr.maybeFlush()
}

// End writes the result set trailer. The buffered tail still needs a
// Flush.
func (wr *Writer) End() {
	switch wr.f {
	case JSON:
		wr.buf = append(wr.buf, `]}}`...)
		wr.buf = append(wr.buf, '\n')
	case XML:
		wr.buf = append(wr.buf, `</results></sparql>`...)
		wr.buf = append(wr.buf, '\n')
	}
}

// appendTerm appends the format-encoded term for id, serving repeats
// from the arena cache. Solution IDs resolve through the subject/object
// dictionary, matching the NDJSON dialect's behavior.
//
//rdf:hotpath
func (wr *Writer) appendTerm(id core.ID) {
	if sp, ok := wr.cache[id]; ok {
		wr.buf = append(wr.buf, wr.arena[sp.start:sp.end]...)
		return
	}
	wr.raw = wr.rend.AppendTerm(wr.raw[:0], id)
	if len(wr.cache) < maxCachedTerms {
		start := len(wr.arena)
		wr.arena = wr.encodeTerm(wr.arena, wr.raw)
		wr.cache[id] = span{start, len(wr.arena)}
		wr.buf = append(wr.buf, wr.arena[start:]...)
		return
	}
	wr.buf = wr.encodeTerm(wr.buf, wr.raw)
}

// encodeTerm appends the format encoding of one raw N-Triples term.
//
//rdf:hotpath
func (wr *Writer) encodeTerm(dst, raw []byte) []byte {
	kind, body, lang, dtype := splitTerm(raw)
	switch wr.f {
	case JSON:
		switch kind {
		case termIRI:
			dst = append(dst, `{"type":"uri","value":`...)
			dst = appendJSONString(dst, body)
		case termBlank:
			dst = append(dst, `{"type":"bnode","value":`...)
			dst = appendJSONString(dst, body)
		default:
			wr.val = appendNTUnescape(wr.val[:0], body)
			dst = append(dst, `{"type":"literal","value":`...)
			dst = appendJSONString(dst, wr.val)
			if len(lang) > 0 {
				dst = append(dst, `,"xml:lang":`...)
				dst = appendJSONString(dst, lang)
			} else if len(dtype) > 0 {
				dst = append(dst, `,"datatype":`...)
				dst = appendJSONString(dst, dtype)
			}
		}
		return append(dst, '}')
	case XML:
		switch kind {
		case termIRI:
			dst = append(dst, `<uri>`...)
			dst = appendXMLText(dst, body)
			dst = append(dst, `</uri>`...)
		case termBlank:
			dst = append(dst, `<bnode>`...)
			dst = appendXMLText(dst, body)
			dst = append(dst, `</bnode>`...)
		default:
			wr.val = appendNTUnescape(wr.val[:0], body)
			dst = append(dst, `<literal`...)
			if len(lang) > 0 {
				dst = append(dst, ` xml:lang="`...)
				dst = appendXMLAttr(dst, lang)
				dst = append(dst, '"')
			} else if len(dtype) > 0 {
				dst = append(dst, ` datatype="`...)
				dst = appendXMLAttr(dst, dtype)
				dst = append(dst, '"')
			}
			dst = append(dst, '>')
			dst = appendXMLText(dst, wr.val)
			dst = append(dst, `</literal>`...)
		}
		return dst
	case CSV:
		// CSV carries plain string values: the IRI without brackets, the
		// blank node label with its _: prefix, the literal's lexical form
		// with language tag and datatype dropped (the W3C CSV profile is
		// deliberately lossy).
		switch kind {
		case termIRI:
			return appendCSVField(dst, body)
		case termBlank:
			wr.val = append(wr.val[:0], '_', ':')
			wr.val = append(wr.val, body...)
			return appendCSVField(dst, wr.val)
		default:
			wr.val = appendNTUnescape(wr.val[:0], body)
			return appendCSVField(dst, wr.val)
		}
	default: // TSV
		// TSV carries full Turtle-syntax terms, which is exactly the
		// dictionary's stored N-Triples serialization: IRIs bracketed,
		// literals quoted with their escapes, tags and datatypes attached.
		return append(dst, raw...)
	}
}

// Term kinds as classified by splitTerm.
const (
	termIRI = iota
	termBlank
	termLiteral
)

// splitTerm decomposes a raw N-Triples term: IRIs yield the bracketless
// IRI, blank nodes their label, literals the still-escaped lexical body
// plus the bare language tag or datatype IRI when present. Anything
// unrecognized is treated as an IRI value verbatim, so a malformed
// dictionary entry degrades to visible text instead of a panic.
//
//rdf:hotpath
func splitTerm(raw []byte) (kind int, body, lang, dtype []byte) {
	if len(raw) >= 2 {
		switch raw[0] {
		case '<':
			if raw[len(raw)-1] == '>' {
				return termIRI, raw[1 : len(raw)-1], nil, nil
			}
		case '_':
			if raw[1] == ':' {
				return termBlank, raw[2:], nil, nil
			}
		case '"':
			// Find the closing quote, honoring backslash escapes.
			i := 1
			for i < len(raw) {
				if raw[i] == '\\' && i+1 < len(raw) {
					i += 2
					continue
				}
				if raw[i] == '"' {
					break
				}
				i++
			}
			if i >= len(raw) {
				break // unterminated: fall through to the verbatim case
			}
			body = raw[1:i]
			rest := raw[i+1:]
			switch {
			case len(rest) > 1 && rest[0] == '@':
				lang = rest[1:]
			case len(rest) > 3 && rest[0] == '^' && rest[1] == '^' && rest[2] == '<' && rest[len(rest)-1] == '>':
				dtype = rest[3 : len(rest)-1]
			}
			return termLiteral, body, lang, dtype
		}
	}
	return termIRI, raw, nil, nil
}

// appendNTUnescape decodes the N-Triples escape set the dictionary
// serializer emits (\\ \" \n \r \t; an unknown escape passes its byte
// through, matching the parser).
//
//rdf:hotpath
func appendNTUnescape(dst, s []byte) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			dst = append(dst, c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			dst = append(dst, '\n')
		case 'r':
			dst = append(dst, '\r')
		case 't':
			dst = append(dst, '\t')
		default: // covers \" and \\ and passes unknown escapes through
			dst = append(dst, s[i])
		}
	}
	return dst
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control bytes; valid UTF-8 passes through verbatim.
//
//rdf:hotpath
func appendJSONString(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendXMLText appends s as XML character data, escaping the markup
// bytes.
//
//rdf:hotpath
func appendXMLText(dst, s []byte) []byte {
	for _, c := range s {
		switch c {
		case '&':
			dst = append(dst, `&amp;`...)
		case '<':
			dst = append(dst, `&lt;`...)
		case '>':
			dst = append(dst, `&gt;`...)
		case '\r':
			// Bare CR would be normalized away by XML parsers; a numeric
			// reference round-trips.
			dst = append(dst, `&#13;`...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendXMLAttr appends s as the body of a double-quoted XML attribute.
//
//rdf:hotpath
func appendXMLAttr(dst, s []byte) []byte {
	for _, c := range s {
		switch c {
		case '&':
			dst = append(dst, `&amp;`...)
		case '<':
			dst = append(dst, `&lt;`...)
		case '"':
			dst = append(dst, `&quot;`...)
		case '\n':
			dst = append(dst, `&#10;`...)
		case '\r':
			dst = append(dst, `&#13;`...)
		case '\t':
			dst = append(dst, `&#9;`...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendCSVField appends s as one RFC 4180 field, quoting only when the
// content demands it (comma, quote, CR or LF).
//
//rdf:hotpath
func appendCSVField(dst, s []byte) []byte {
	need := false
	for _, c := range s {
		if c == ',' || c == '"' || c == '\r' || c == '\n' {
			need = true
			break
		}
	}
	if !need {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for _, c := range s {
		if c == '"' {
			dst = append(dst, '"', '"')
			continue
		}
		dst = append(dst, c)
	}
	return append(dst, '"')
}
