// Package results implements the SPARQL 1.1 Query Results formats the
// protocol endpoint serves: streaming serializers for the JSON, XML, CSV
// and TSV result sets plus the Accept-header content negotiation that
// picks between them. Every serializer is built on the same substrate as
// the PR-5 NDJSON writer — pooled per-request scratch, the store's
// dictionary cursors, and an escaped-term arena cache keyed by ID — so
// the zero-allocations-per-row property of the private dialect carries
// over to all four standard formats.
package results

import (
	"strconv"
	"strings"
)

// Format is one of the supported SPARQL result serializations.
type Format uint8

// The four formats, in server preference order: when an Accept header
// rates several of them equally (including */*), the earlier one wins.
const (
	JSON Format = iota // application/sparql-results+json
	XML                // application/sparql-results+xml
	CSV                // text/csv (RFC 4180 plain values)
	TSV                // text/tab-separated-values (N-Triples terms)
	numFormats
)

// String names the format for logs, tables and bench gate keys.
func (f Format) String() string {
	switch f {
	case JSON:
		return "json"
	case XML:
		return "xml"
	case CSV:
		return "csv"
	case TSV:
		return "tsv"
	}
	return "format(" + strconv.Itoa(int(f)) + ")"
}

// ContentType is the media type a response in this format carries.
func (f Format) ContentType() string {
	switch f {
	case JSON:
		return "application/sparql-results+json"
	case XML:
		return "application/sparql-results+xml"
	case CSV:
		return "text/csv; charset=utf-8"
	case TSV:
		return "text/tab-separated-values; charset=utf-8"
	}
	return "application/octet-stream"
}

// Formats lists the supported formats in server preference order.
func Formats() []Format { return []Format{JSON, XML, CSV, TSV} }

// mediaType is one concrete media type the server can produce. Aliases
// (application/json, application/xml) map to the same formats as the
// canonical SPARQL result types so generic clients negotiate cleanly.
type mediaType struct {
	typ, sub string
	f        Format
}

var supported = []mediaType{
	{"application", "sparql-results+json", JSON},
	{"application", "json", JSON},
	{"application", "sparql-results+xml", XML},
	{"application", "xml", XML},
	{"text", "csv", CSV},
	{"text", "tab-separated-values", TSV},
}

// SupportedTypes lists the concrete media types negotiation accepts, for
// 406 error messages.
func SupportedTypes() string {
	parts := make([]string, len(supported))
	for i, m := range supported {
		parts[i] = m.typ + "/" + m.sub
	}
	return strings.Join(parts, ", ")
}

// specificity ranks how precisely an Accept media range names a type:
// exact type/subtype beats type/*, which beats */*.
const (
	specAny  = iota // */*
	specType        // type/*
	specFull        // type/subtype
)

// Negotiate picks the response format for an Accept header per RFC 9110
// section 12.5.1: each supported media type takes the quality value of
// the most specific range matching it, the highest-quality type wins,
// and ties break toward the server preference order (JSON first). An
// absent or empty header accepts anything and yields JSON. ok=false
// means no supported type is acceptable — the caller answers 406.
func Negotiate(accept string) (Format, bool) {
	if strings.TrimSpace(accept) == "" {
		return JSON, true
	}
	// Per supported entry: specificity and quality of the best-matching
	// range seen so far. -1 quality marks "no range matched".
	spec := make([]int, len(supported))
	qual := make([]float64, len(supported))
	for i := range qual {
		qual[i] = -1
	}
	for _, elem := range strings.Split(accept, ",") {
		rng, q := parseRange(elem)
		if rng == "" {
			continue
		}
		typ, sub, ok := strings.Cut(rng, "/")
		if !ok {
			continue
		}
		for i, m := range supported {
			var sp int
			switch {
			case typ == m.typ && sub == m.sub:
				sp = specFull
			case typ == m.typ && sub == "*":
				sp = specType
			case typ == "*" && sub == "*":
				sp = specAny
			default:
				continue
			}
			if sp > spec[i] || qual[i] < 0 {
				spec[i], qual[i] = sp, q
			} else if sp == spec[i] && q > qual[i] {
				// Equally specific ranges: the more permissive wins
				// (listing a type twice should not hide it).
				qual[i] = q
			}
		}
	}
	best, bestQ := Format(0), 0.0
	found := false
	for i, m := range supported {
		if qual[i] <= 0 {
			continue
		}
		// Strictly-greater keeps the first (most preferred) entry on
		// ties; supported[] is ordered by server preference.
		if !found || qual[i] > bestQ {
			best, bestQ, found = m.f, qual[i], true
		}
	}
	return best, found
}

// parseRange splits one Accept list element into its lowercased media
// range and quality value. A malformed or absent q parameter reads as
// 1.0 (the header's default); q is clamped to [0, 1].
func parseRange(elem string) (string, float64) {
	parts := strings.Split(elem, ";")
	rng := strings.ToLower(strings.TrimSpace(parts[0]))
	q := 1.0
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		k, v, ok := strings.Cut(p, "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			q = min(max(f, 0), 1)
		}
	}
	return rng, q
}
