package results

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/dict"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/store"
)

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   Format
		ok     bool
	}{
		{"", JSON, true},
		{"   ", JSON, true},
		{"application/sparql-results+json", JSON, true},
		{"application/json", JSON, true},
		{"application/sparql-results+xml", XML, true},
		{"application/xml", XML, true},
		{"text/csv", CSV, true},
		{"TEXT/CSV", CSV, true},
		{"text/tab-separated-values", TSV, true},
		// q-value ordering: the higher quality wins regardless of list
		// position.
		{"application/sparql-results+xml;q=0.9, text/csv", CSV, true},
		{"text/csv;q=0.5, application/sparql-results+xml;q=0.4", CSV, true},
		{"text/tab-separated-values;q=1.0, text/csv;q=0.9", TSV, true},
		// Wildcards: */* accepts everything (server preference JSON),
		// type/* narrows to that top-level type.
		{"*/*", JSON, true},
		{"application/*", JSON, true},
		{"text/*", CSV, true},
		{"image/png, */*;q=0.1", JSON, true},
		// An exact q=0 excludes the type even when a wildcard would
		// otherwise readmit it.
		{"text/csv;q=0, text/*", TSV, true},
		{"text/csv;q=0, */*", JSON, true},
		// Equal quality ties break toward the server preference order.
		{"text/csv, application/sparql-results+json", JSON, true},
		{"text/csv;q=0.8, application/sparql-results+xml;q=0.8", XML, true},
		// Nothing acceptable.
		{"image/png", 0, false},
		{"text/html;q=0.9, application/pdf", 0, false},
		{"*/*;q=0", 0, false},
		// Malformed q parameters read as the default 1.0.
		{"text/csv;q=abc", CSV, true},
		{"text/csv;level=1;q=0.3, application/xml;q=0.2", CSV, true},
	}
	for _, c := range cases {
		got, ok := Negotiate(c.accept)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Negotiate(%q) = %v, %v; want %v, %v", c.accept, got, ok, c.want, c.ok)
		}
	}
}

// termStore builds a dictionary store over the given already-serialized
// N-Triples terms (sorted internally) and one predicate.
func termStore(t testing.TB, terms []string) (*store.Store, []string) {
	t.Helper()
	sorted := append([]string(nil), terms...)
	sort.Strings(sorted)
	so, err := dict.New(sorted, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dict.New([]string{"<http://ex/p>"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &store.Store{Dicts: &rdf.Dicts{SO: so, P: p}}, sorted
}

// testTerms covers every term kind and escape class the serializers
// must handle: IRIs with query metacharacters, blank nodes, plain,
// language-tagged and datatyped literals, and a literal whose lexical
// form holds quotes, commas, tabs, newlines and markup bytes (stored in
// the canonical escaped N-Triples serialization the dictionary holds).
var testTerms = []string{
	`<http://ex/iri?a=1&b=2>`,
	`_:bn7`,
	`"plain"`,
	`"hello"@en-US`,
	`"3.14"^^<http://www.w3.org/2001/XMLSchema#decimal>`,
	`"quo\"te, comma\nand\ttab & <angle>"`,
}

// expectedParts derives the oracle (kind, value, lang, datatype) for a
// stored term through the N-Triples parser.
func expectedParts(t *testing.T, stored string) (kind rdf.TermKind, value, lang, dtype string) {
	t.Helper()
	term, err := rdf.ParseTerm(stored)
	if err != nil {
		t.Fatalf("oracle parse %q: %v", stored, err)
	}
	if term.Kind == rdf.Literal {
		if strings.HasPrefix(term.Qualifier, "@") {
			lang = term.Qualifier[1:]
		} else {
			dtype = term.Qualifier
		}
	}
	return term.Kind, term.Value, lang, dtype
}

// writeAll streams one solution per term through a writer of format f
// and returns the serialized body.
func writeAll(t *testing.T, f Format, st *store.Store, n int) []byte {
	t.Helper()
	var out bytes.Buffer
	wr := Acquire(f, st, &out)
	defer wr.Release()
	wr.Begin([]string{"x"})
	for id := 0; id < n; id++ {
		wr.WriteSolution(map[string]core.ID{"x": core.ID(id)})
	}
	wr.End()
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if wr.Rows() != n {
		t.Fatalf("Rows() = %d, want %d", wr.Rows(), n)
	}
	return out.Bytes()
}

func TestWriterJSON(t *testing.T) {
	st, sorted := termStore(t, testTerms)
	body := writeAll(t, JSON, st, len(sorted))
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type     string `json:"type"`
				Value    string `json:"value"`
				Lang     string `json:"xml:lang"`
				Datatype string `json:"datatype"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid JSON %s: %v", body, err)
	}
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "x" {
		t.Fatalf("head vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != len(sorted) {
		t.Fatalf("%d bindings, want %d", len(doc.Results.Bindings), len(sorted))
	}
	for i, stored := range sorted {
		kind, value, lang, dtype := expectedParts(t, stored)
		b, ok := doc.Results.Bindings[i]["x"]
		if !ok {
			t.Fatalf("row %d missing x", i)
		}
		wantType := map[rdf.TermKind]string{rdf.IRI: "uri", rdf.BlankNode: "bnode", rdf.Literal: "literal"}[kind]
		if b.Type != wantType || b.Value != value || b.Lang != lang || b.Datatype != dtype {
			t.Errorf("row %d (%q): got %+v, want type=%s value=%q lang=%q dt=%q",
				i, stored, b, wantType, value, lang, dtype)
		}
	}
}

func TestWriterXML(t *testing.T) {
	st, sorted := termStore(t, testTerms)
	body := writeAll(t, XML, st, len(sorted))
	var doc struct {
		XMLName xml.Name `xml:"sparql"`
		Vars    []struct {
			Name string `xml:"name,attr"`
		} `xml:"head>variable"`
		Results []struct {
			Bindings []struct {
				Name    string  `xml:"name,attr"`
				URI     *string `xml:"uri"`
				BNode   *string `xml:"bnode"`
				Literal *struct {
					Lang     string `xml:"lang,attr"`
					Datatype string `xml:"datatype,attr"`
					Value    string `xml:",chardata"`
				} `xml:"literal"`
			} `xml:"binding"`
		} `xml:"results>result"`
	}
	if err := xml.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid XML %s: %v", body, err)
	}
	if doc.XMLName.Space != "http://www.w3.org/2005/sparql-results#" {
		t.Fatalf("namespace = %q", doc.XMLName.Space)
	}
	if len(doc.Vars) != 1 || doc.Vars[0].Name != "x" {
		t.Fatalf("head vars = %v", doc.Vars)
	}
	if len(doc.Results) != len(sorted) {
		t.Fatalf("%d results, want %d", len(doc.Results), len(sorted))
	}
	for i, stored := range sorted {
		kind, value, lang, dtype := expectedParts(t, stored)
		bs := doc.Results[i].Bindings
		if len(bs) != 1 || bs[0].Name != "x" {
			t.Fatalf("row %d bindings = %+v", i, bs)
		}
		b := bs[0]
		switch kind {
		case rdf.IRI:
			if b.URI == nil || *b.URI != value {
				t.Errorf("row %d (%q): uri = %v, want %q", i, stored, b.URI, value)
			}
		case rdf.BlankNode:
			if b.BNode == nil || *b.BNode != value {
				t.Errorf("row %d (%q): bnode = %v, want %q", i, stored, b.BNode, value)
			}
		default:
			if b.Literal == nil || b.Literal.Value != value || b.Literal.Lang != lang || b.Literal.Datatype != dtype {
				t.Errorf("row %d (%q): literal = %+v, want value=%q lang=%q dt=%q",
					i, stored, b.Literal, value, lang, dtype)
			}
		}
	}
}

func TestWriterCSV(t *testing.T) {
	st, sorted := termStore(t, testTerms)
	body := writeAll(t, CSV, st, len(sorted))
	rows, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV %q: %v", body, err)
	}
	if len(rows) != len(sorted)+1 {
		t.Fatalf("%d rows, want %d", len(rows), len(sorted)+1)
	}
	if len(rows[0]) != 1 || rows[0][0] != "x" {
		t.Fatalf("header = %v", rows[0])
	}
	for i, stored := range sorted {
		kind, value, _, _ := expectedParts(t, stored)
		want := value
		if kind == rdf.BlankNode {
			want = "_:" + value
		}
		if len(rows[i+1]) != 1 || rows[i+1][0] != want {
			t.Errorf("row %d (%q): %v, want %q", i, stored, rows[i+1], want)
		}
	}
}

func TestWriterTSV(t *testing.T) {
	st, sorted := termStore(t, testTerms)
	body := writeAll(t, TSV, st, len(sorted))
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != len(sorted)+1 {
		t.Fatalf("%d lines, want %d: %q", len(lines), len(sorted)+1, body)
	}
	if lines[0] != "?x" {
		t.Fatalf("header = %q", lines[0])
	}
	// TSV carries the dictionary's exact N-Triples serialization.
	for i, stored := range sorted {
		if lines[i+1] != stored {
			t.Errorf("row %d: %q, want %q", i, lines[i+1], stored)
		}
	}
}

// TestWriterUnboundAndRepeats pins the unbound-variable behavior (JSON
// and XML omit the binding, CSV and TSV leave an empty field) and that
// cache-served repeats render identically to first encodings.
func TestWriterUnboundAndRepeats(t *testing.T) {
	st, _ := termStore(t, testTerms)
	for _, f := range Formats() {
		var out bytes.Buffer
		wr := Acquire(f, st, &out)
		wr.Begin([]string{"a", "b"})
		wr.WriteSolution(map[string]core.ID{"a": 0, "b": 1})
		wr.WriteSolution(map[string]core.ID{"a": 0}) // b unbound; a repeats
		wr.End()
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		wr.Release()
		body := out.String()
		switch f {
		case JSON:
			var doc struct {
				Results struct {
					Bindings []map[string]any `json:"bindings"`
				} `json:"results"`
			}
			if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			rows := doc.Results.Bindings
			if len(rows) != 2 || len(rows[0]) != 2 || len(rows[1]) != 1 {
				t.Fatalf("json rows = %v", rows)
			}
			if fmt.Sprint(rows[0]["a"]) != fmt.Sprint(rows[1]["a"]) {
				t.Fatalf("cached repeat differs: %v vs %v", rows[0]["a"], rows[1]["a"])
			}
			if _, ok := rows[1]["b"]; ok {
				t.Fatalf("unbound b emitted: %v", rows[1])
			}
		case XML:
			if got := strings.Count(body, "<binding"); got != 3 {
				t.Fatalf("xml bindings = %d, want 3: %s", got, body)
			}
		case CSV:
			lines := strings.Split(strings.TrimSpace(body), "\r\n")
			if len(lines) != 3 || !strings.HasSuffix(lines[2], ",") {
				t.Fatalf("csv lines = %q", lines)
			}
		case TSV:
			lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
			if len(lines) != 3 || !strings.HasSuffix(lines[2], "\t") {
				t.Fatalf("tsv lines = %q", lines)
			}
		}
	}
}

// TestWriterIntsFallback: a store without dictionaries renders the <id>
// fallback, which every format treats as an IRI.
func TestWriterIntsFallback(t *testing.T) {
	st := &store.Store{}
	var out bytes.Buffer
	wr := Acquire(JSON, st, &out)
	wr.Begin([]string{"x"})
	wr.WriteSolution(map[string]core.ID{"x": 42})
	wr.End()
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	wr.Release()
	if !strings.Contains(out.String(), `{"type":"uri","value":"42"}`) {
		t.Fatalf("ints fallback body = %s", out.String())
	}
}

// manyTerms builds a wider dictionary so the allocation test exercises
// arena growth, cache fills and bucket-cursor movement before measuring.
func manyTerms(n int) []string {
	terms := make([]string, n)
	for i := range terms {
		switch i % 3 {
		case 0:
			terms[i] = fmt.Sprintf("<http://ex/entity/%06d?k=v&x=y>", i)
		case 1:
			terms[i] = fmt.Sprintf(`"literal value %06d, with\ttabs"@en`, i)
		default:
			terms[i] = fmt.Sprintf(`"%06d"^^<http://www.w3.org/2001/XMLSchema#integer>`, i)
		}
	}
	return terms
}

// TestWriterAllocs pins the zero-allocations-per-row property of every
// serializer: after the first pass fills the term cache, the steady
// state row path allocates nothing in any format.
func TestWriterAllocs(t *testing.T) {
	st, sorted := termStore(t, manyTerms(512))
	n := len(sorted)
	for _, f := range Formats() {
		t.Run(f.String(), func(t *testing.T) {
			wr := Acquire(f, st, io.Discard)
			defer wr.Release()
			wr.Begin([]string{"x", "y"})
			sol := map[string]core.ID{}
			// Warm: fill the term cache and grow every scratch buffer.
			for i := 0; i < n; i++ {
				sol["x"], sol["y"] = core.ID(i), core.ID((i+7)%n)
				wr.WriteSolution(sol)
			}
			wr.Flush()
			i := 0
			if a := testing.AllocsPerRun(500, func() {
				sol["x"], sol["y"] = core.ID(i%n), core.ID((i+13)%n)
				wr.WriteSolution(sol)
				i++
			}); a != 0 {
				t.Errorf("%v WriteSolution allocs/row = %v, want 0", f, a)
			}
			wr.End()
			wr.Flush()
		})
	}
}

// BenchmarkSerializerRows measures rows/sec per format over a warm term
// cache — the steady state the protocol endpoint serves from.
func BenchmarkSerializerRows(b *testing.B) {
	st, sorted := termStore(b, manyTerms(2048))
	n := len(sorted)
	for _, f := range Formats() {
		b.Run(f.String(), func(b *testing.B) {
			wr := Acquire(f, st, io.Discard)
			defer wr.Release()
			wr.Begin([]string{"x", "y"})
			sol := map[string]core.ID{}
			for i := 0; i < n; i++ {
				sol["x"], sol["y"] = core.ID(i), core.ID((i+7)%n)
				wr.WriteSolution(sol)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol["x"], sol["y"] = core.ID(i%n), core.ID((i+13)%n)
				wr.WriteSolution(sol)
			}
			wr.End()
			wr.Flush()
		})
	}
}
