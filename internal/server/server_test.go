package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/store"
)

// testStore builds an in-memory dictionary store over a small social
// graph: people know each other and like items.
func testStore(t testing.TB, people, likesPer int) *store.Store {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < people; i++ {
		fmt.Fprintf(&sb, "<http://ex/p%d> <http://ex/knows> <http://ex/p%d> .\n", i, (i+1)%people)
		for j := 0; j < likesPer; j++ {
			fmt.Fprintf(&sb, "<http://ex/p%d> <http://ex/likes> <http://ex/item%d> .\n", i, (i+j)%(people/2+1))
		}
	}
	statements, err := rdf.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.Build(d, core.Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	return &store.Store{Index: x, Dicts: dicts}
}

// ndjsonLines splits a response body into decoded JSON lines.
func ndjsonLines(t *testing.T, body string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return resp, sb.String()
}

func TestServerEndpoints(t *testing.T) {
	st := testStore(t, 40, 3)
	srv := New(st, Options{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	t.Run("healthz", func(t *testing.T) {
		resp, body := get(t, ts, "/healthz")
		if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
			t.Fatalf("healthz: %d %q", resp.StatusCode, body)
		}
	})

	t.Run("readyz", func(t *testing.T) {
		resp, body := get(t, ts, "/readyz")
		if resp.StatusCode != 200 || !strings.Contains(body, "ready") {
			t.Fatalf("readyz: %d %q", resp.StatusCode, body)
		}
	})

	t.Run("query", func(t *testing.T) {
		resp, body := get(t, ts, "/query?s="+url.QueryEscape("<http://ex/p0>"))
		if resp.StatusCode != 200 {
			t.Fatalf("query: status %d body %q", resp.StatusCode, body)
		}
		lines := ndjsonLines(t, body)
		last := lines[len(lines)-1]
		matches := int(last["matches"].(float64))
		if matches != len(lines)-1 {
			t.Fatalf("summary says %d matches, stream has %d rows", matches, len(lines)-1)
		}
		// p0 knows p1 and likes 3 items.
		if matches != 4 {
			t.Fatalf("expected 4 matches for S??, got %d", matches)
		}
		for _, row := range lines[:len(lines)-1] {
			if row["s"] != "<http://ex/p0>" {
				t.Fatalf("row subject %v, want <http://ex/p0>", row["s"])
			}
		}
	})

	t.Run("query limit truncates", func(t *testing.T) {
		_, body := get(t, ts, "/query?s="+url.QueryEscape("<http://ex/p0>")+"&limit=2")
		lines := ndjsonLines(t, body)
		last := lines[len(lines)-1]
		if int(last["matches"].(float64)) != 2 || last["truncated"] != true {
			t.Fatalf("limit summary wrong: %v", last)
		}
	})

	t.Run("query exact limit is not truncated", func(t *testing.T) {
		// p0 has exactly 4 triples; limit=4 returns the complete result.
		_, body := get(t, ts, "/query?s="+url.QueryEscape("<http://ex/p0>")+"&limit=4")
		lines := ndjsonLines(t, body)
		last := lines[len(lines)-1]
		if int(last["matches"].(float64)) != 4 || last["truncated"] == true {
			t.Fatalf("exact-limit summary wrong: %v", last)
		}
	})

	t.Run("query cache", func(t *testing.T) {
		path := "/query?p=" + url.QueryEscape("<http://ex/knows>")
		resp1, body1 := get(t, ts, path)
		resp2, body2 := get(t, ts, path)
		if resp1.Header.Get("X-Cache") != "miss" && resp1.Header.Get("X-Cache") != "hit" {
			t.Fatalf("missing X-Cache header")
		}
		if resp2.Header.Get("X-Cache") != "hit" {
			t.Fatalf("second identical query not served from cache (X-Cache=%q)", resp2.Header.Get("X-Cache"))
		}
		if body1 != body2 {
			t.Fatalf("cached body differs from computed body")
		}
	})

	t.Run("query bad term", func(t *testing.T) {
		resp, _ := get(t, ts, "/query?s="+url.QueryEscape("<http://ex/nobody>"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown term: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("sparql", func(t *testing.T) {
		q := "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"
		resp, body := get(t, ts, "/v1/sparql?q="+url.QueryEscape(q))
		if resp.StatusCode != 200 {
			t.Fatalf("sparql: status %d body %q", resp.StatusCode, body)
		}
		lines := ndjsonLines(t, body)
		last := lines[len(lines)-1]
		if int(last["results"].(float64)) != 40 {
			t.Fatalf("expected 40 knows-solutions, summary %v", last)
		}
		if last["plan_cached"] != false {
			t.Fatalf("first execution should not have a cached plan")
		}
		// Different spelling of the same BGP: plan cache hit, result
		// cache keyed on normalized text serves it without execution.
		q2 := "SELECT ?x ?y WHERE   {   ?x   <http://ex/knows>   ?y   . }"
		resp2, body2 := get(t, ts, "/v1/sparql?q="+url.QueryEscape(q2))
		if resp2.Header.Get("X-Cache") != "hit" {
			t.Fatalf("normalized respelling not served from result cache")
		}
		if body2 != body {
			t.Fatalf("cached sparql body differs")
		}
	})

	t.Run("sparql join", func(t *testing.T) {
		q := "SELECT ?x WHERE { <http://ex/p0> <http://ex/knows> ?x . ?x <http://ex/likes> <http://ex/item1> . }"
		resp, body := get(t, ts, "/v1/sparql?q="+url.QueryEscape(q))
		if resp.StatusCode != 200 {
			t.Fatalf("sparql join: status %d", resp.StatusCode)
		}
		lines := ndjsonLines(t, body)
		// p0 knows p1; p1 likes item1..item3, so one solution.
		if n := int(lines[len(lines)-1]["results"].(float64)); n != 1 {
			t.Fatalf("join solutions = %d, want 1: %s", n, body)
		}
		if lines[0]["x"] != "<http://ex/p1>" {
			t.Fatalf("join solution %v, want <http://ex/p1>", lines[0]["x"])
		}
	})

	t.Run("sparql parse error", func(t *testing.T) {
		resp, _ := get(t, ts, "/v1/sparql?q="+url.QueryEscape("SELECT WHERE"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("parse error: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("stats", func(t *testing.T) {
		resp, body := get(t, ts, "/stats")
		if resp.StatusCode != 200 {
			t.Fatalf("stats: %d", resp.StatusCode)
		}
		var s Stats
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatal(err)
		}
		if s.Layout != "2Tp" || s.Triples != st.Index.NumTriples() || s.Workers != 4 {
			t.Fatalf("stats document wrong: %+v", s)
		}
		if s.Queries == 0 || s.CacheHits == 0 {
			t.Fatalf("counters not advancing: %+v", s)
		}
	})
}

// TestServerSharedStoreStress fires 16 concurrent clients mixing triple
// pattern and BGP queries at one shared store; run with -race to enforce
// the shared-store concurrency contract end to end (HTTP handler,
// worker pool, result cache, QueryCtx pooling, executor).
func TestServerSharedStoreStress(t *testing.T) {
	st := testStore(t, 60, 4)
	srv := New(st, Options{Workers: 8, CacheEntries: 32})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	queries := []string{
		"/query?s=" + url.QueryEscape("<http://ex/p1>"),
		"/query?p=" + url.QueryEscape("<http://ex/knows>"),
		"/query?o=" + url.QueryEscape("<http://ex/item2>"),
		"/query?s=" + url.QueryEscape("<http://ex/p3>") + "&o=" + url.QueryEscape("<http://ex/p4>"),
		"/query",
		"/v1/sparql?q=" + url.QueryEscape("SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"),
		"/v1/sparql?q=" + url.QueryEscape("SELECT ?x WHERE { ?x <http://ex/likes> <http://ex/item1> . ?x <http://ex/likes> <http://ex/item2> . }"),
		"/v1/sparql?q=" + url.QueryEscape("SELECT ?x ?z WHERE { <http://ex/p0> <http://ex/knows> ?x . ?x <http://ex/likes> ?z . }"),
		"/stats",
		"/healthz",
	}

	// Reference bodies computed sequentially before the storm; dynamic
	// endpoints (stats) are checked for status only.
	want := map[string]string{}
	for _, qp := range queries {
		if strings.HasPrefix(qp, "/stats") || strings.HasPrefix(qp, "/healthz") {
			continue
		}
		resp, body := get(t, ts, qp)
		if resp.StatusCode != 200 {
			t.Fatalf("reference %s: status %d", qp, resp.StatusCode)
		}
		want[qp] = body
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				qp := queries[rng.Intn(len(queries))]
				resp, err := http.Get(ts.URL + qp)
				if err != nil {
					errs <- err.Error()
					return
				}
				var sb strings.Builder
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<24)
				for sc.Scan() {
					sb.WriteString(sc.Text())
					sb.WriteByte('\n')
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("%s: status %d", qp, resp.StatusCode)
					return
				}
				if ref, ok := want[qp]; ok && sb.String() != ref {
					errs <- fmt.Sprintf("%s: concurrent body differs from sequential reference", qp)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	s := srv.Snapshot()
	if s.CacheHits == 0 {
		t.Fatalf("stress run produced no cache hits: %+v", s)
	}
}

// mutableStore writes the testStore dataset to disk and opens it for
// updates.
func mutableStore(t testing.TB, dir string, people, likesPer, threshold int) *store.Mutable {
	t.Helper()
	st := testStore(t, people, likesPer)
	path := filepath.Join(dir, "srv.idx")
	if err := store.Write(path, st); err != nil {
		t.Fatal(err)
	}
	m, err := store.OpenMutable(path, threshold)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func postForm(t *testing.T, ts *httptest.Server, path string, vals url.Values) (*http.Response, string) {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return resp, sb.String()
}

// TestServerLimitValidation pins the limit parameter contract: negative
// limits are a 400 (only absence means unlimited), and limit=0 yields
// zero result rows plus the summary line.
func TestServerLimitValidation(t *testing.T) {
	st := testStore(t, 10, 2)
	srv := New(st, Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{
		"/query?limit=-5",
		"/query?limit=-1",
		"/v1/sparql?limit=-1&q=" + url.QueryEscape("SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"),
	} {
		resp, _ := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}

	resp, body := get(t, ts, "/query?limit=0&s="+url.QueryEscape("<http://ex/p0>"))
	if resp.StatusCode != 200 {
		t.Fatalf("limit=0 status %d", resp.StatusCode)
	}
	lines := ndjsonLines(t, body)
	if len(lines) != 1 {
		t.Fatalf("limit=0 returned %d lines, want summary only", len(lines))
	}
	if int(lines[0]["matches"].(float64)) != 0 || lines[0]["truncated"] != true {
		t.Fatalf("limit=0 summary %v, want 0 matches and truncated", lines[0])
	}

	resp, body = get(t, ts, "/v1/sparql?limit=0&q="+url.QueryEscape("SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"))
	if resp.StatusCode != 200 {
		t.Fatalf("sparql limit=0 status %d", resp.StatusCode)
	}
	lines = ndjsonLines(t, body)
	if len(lines) != 1 || int(lines[0]["results"].(float64)) != 0 {
		t.Fatalf("sparql limit=0 lines %v", lines)
	}
}

// TestServerReadOnlyRejectsWrites checks the fixed-store server keeps
// its immutability contract on the write endpoints.
func TestServerReadOnlyRejectsWrites(t *testing.T) {
	st := testStore(t, 10, 2)
	srv := New(st, Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := postForm(t, ts, "/insert", url.Values{
		"s": {"<http://ex/x>"}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/y>"},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only insert: status %d, want 403", resp.StatusCode)
	}
}

// TestServerWriteEndpoints is the end-to-end acceptance demo: serve a
// built store, insert a triple with a brand-new IRI over HTTP, observe
// it immediately on /query (cache invalidated), restart from the WAL
// and still see it, then force a merge and check query results are
// unchanged.
func TestServerWriteEndpoints(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 20, 2, 0)
	srv := NewMutable(m, Options{Workers: 4})
	ts := httptest.NewServer(srv)

	newbie := "<http://ex/newcomer>"
	queryPath := "/query?s=" + url.QueryEscape(newbie)
	knowsPath := "/query?p=" + url.QueryEscape("<http://ex/knows>")

	// Unknown term: 400 before the insert. Warm the predicate query into
	// the result cache so the invalidation is observable.
	if resp, _ := get(t, ts, queryPath); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pre-insert query: status %d, want 400", resp.StatusCode)
	}
	_, knowsBefore := get(t, ts, knowsPath)
	if resp, _ := get(t, ts, knowsPath); resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("warmup query not cached")
	}

	// GET on a write endpoint is rejected; POST inserts.
	if resp, _ := get(t, ts, "/insert?s=x"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET insert: status %d, want 405", resp.StatusCode)
	}
	vals := url.Values{"s": {newbie}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/p0>"}}
	resp, body := postForm(t, ts, "/insert", vals)
	if resp.StatusCode != 200 {
		t.Fatalf("insert: status %d body %s", resp.StatusCode, body)
	}
	var wr store.WriteResult
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &wr); err != nil {
		t.Fatal(err)
	}
	if !wr.Changed || wr.LogSize != 1 {
		t.Fatalf("insert result %+v", wr)
	}

	// The new triple is visible immediately, through both endpoints.
	resp, body = get(t, ts, queryPath)
	if resp.StatusCode != 200 {
		t.Fatalf("post-insert query: status %d", resp.StatusCode)
	}
	lines := ndjsonLines(t, body)
	if int(lines[len(lines)-1]["matches"].(float64)) != 1 {
		t.Fatalf("post-insert matches %v", lines[len(lines)-1])
	}
	if lines[0]["s"] != newbie {
		t.Fatalf("post-insert subject %v", lines[0]["s"])
	}
	// The cached predicate query was invalidated: fresh body, one more row.
	resp, knowsAfter := get(t, ts, knowsPath)
	if resp.Header.Get("X-Cache") == "hit" {
		t.Fatal("stale cache entry served after insert")
	}
	if knowsAfter == knowsBefore {
		t.Fatal("predicate query body unchanged after insert")
	}
	if n := srv.Snapshot(); !n.Mutable || n.Inserts != 1 || n.LogSize != 1 {
		t.Fatalf("stats after insert: %+v", n)
	}

	// Restart: close the server and the store, reopen from disk + WAL.
	ts.Close()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := store.OpenMutable(filepath.Join(dir, "srv.idx"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	srv = NewMutable(m2, Options{Workers: 4})
	ts = httptest.NewServer(srv)
	defer ts.Close()

	resp, body = get(t, ts, queryPath)
	if resp.StatusCode != 200 {
		t.Fatalf("post-restart query: status %d", resp.StatusCode)
	}
	lines = ndjsonLines(t, body)
	if int(lines[len(lines)-1]["matches"].(float64)) != 1 {
		t.Fatalf("WAL recovery lost the insert: %v", lines[len(lines)-1])
	}
	// A merge remaps dictionary IDs, which legitimately permutes the
	// emission order; compare result sets, not byte streams.
	sortedLines := func(body string) string {
		ls := strings.Split(strings.TrimSpace(body), "\n")
		sort.Strings(ls)
		return strings.Join(ls, "\n")
	}
	_, fullBefore := get(t, ts, knowsPath)

	// Forced merge folds the log into the static index; results hold.
	if err := m2.Merge(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Snapshot(); n.LogSize != 0 || n.Merges != 1 {
		t.Fatalf("stats after merge: %+v", n)
	}
	resp, body = get(t, ts, queryPath)
	if resp.StatusCode != 200 {
		t.Fatalf("post-merge query: status %d", resp.StatusCode)
	}
	lines = ndjsonLines(t, body)
	if int(lines[len(lines)-1]["matches"].(float64)) != 1 {
		t.Fatalf("merge lost the insert: %v", lines[len(lines)-1])
	}
	if _, fullAfter := get(t, ts, knowsPath); sortedLines(fullAfter) != sortedLines(fullBefore) {
		t.Fatalf("merge changed rendered query results:\n%s\nvs\n%s", fullBefore, fullAfter)
	}

	// Delete through the API; the triple disappears.
	resp, _ = postForm(t, ts, "/delete", vals)
	if resp.StatusCode != 200 {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	_, body = get(t, ts, queryPath)
	lines = ndjsonLines(t, body)
	if int(lines[len(lines)-1]["matches"].(float64)) != 0 {
		t.Fatalf("delete not visible: %v", lines[len(lines)-1])
	}
}

// TestServerWriterReaderStress fires 16 concurrent readers mixing
// pattern and BGP queries while one writer inserts and deletes through
// the HTTP API; run with -race to enforce the RCU snapshot discipline
// end to end (overlay dictionaries, dynamic snapshots, generation-keyed
// caches). Readers check internal consistency (summary line matches row
// count) since results legitimately change under their feet.
func TestServerWriterReaderStress(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 40, 3, 64)
	srv := NewMutable(m, Options{Workers: 8, CacheEntries: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reads := []string{
		"/query?s=" + url.QueryEscape("<http://ex/p1>"),
		"/query?p=" + url.QueryEscape("<http://ex/knows>"),
		"/query?o=" + url.QueryEscape("<http://ex/item2>"),
		"/query",
		"/v1/sparql?q=" + url.QueryEscape("SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"),
		"/v1/sparql?q=" + url.QueryEscape("SELECT ?x ?z WHERE { <http://ex/p0> <http://ex/knows> ?x . ?x <http://ex/likes> ?z . }"),
		"/stats",
	}

	const readers = 16
	const writes = 120
	var wg sync.WaitGroup
	errs := make(chan string, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			vals := url.Values{
				"s": {fmt.Sprintf("<http://ex/w%d>", i%17)},
				"p": {"<http://ex/knows>"},
				"o": {fmt.Sprintf("<http://ex/p%d>", i%40)},
			}
			path := "/insert"
			if i%3 == 2 {
				path = "/delete"
			}
			resp, err := http.PostForm(ts.URL+path, vals)
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Sprintf("%s: status %d", path, resp.StatusCode)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				qp := reads[rng.Intn(len(reads))]
				resp, err := http.Get(ts.URL + qp)
				if err != nil {
					errs <- err.Error()
					return
				}
				var sb strings.Builder
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<24)
				for sc.Scan() {
					sb.WriteString(sc.Text())
					sb.WriteByte('\n')
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("%s: status %d", qp, resp.StatusCode)
					return
				}
				if strings.HasPrefix(qp, "/query") {
					lines := ndjsonLines(t, sb.String())
					last := lines[len(lines)-1]
					n, ok := last["matches"]
					if !ok {
						errs <- fmt.Sprintf("%s: no summary line: %v", qp, last)
						return
					}
					if int(n.(float64)) != len(lines)-1 {
						errs <- fmt.Sprintf("%s: summary %v but %d rows", qp, n, len(lines)-1)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s := srv.Snapshot(); s.Inserts == 0 || s.Generation == 0 {
		t.Fatalf("writer made no progress: %+v", s)
	}
}

// TestServerDeadline forces a tiny timeout on an expensive full-scan
// query and expects the stream to stop with an error line instead of
// running away.
func TestServerDeadline(t *testing.T) {
	st := testStore(t, 300, 30)
	srv := New(st, Options{Workers: 2, Timeout: 1 * time.Nanosecond, CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts, "/query")
	// The deadline may fire while queued (503) or mid-stream (error
	// line); both are acceptable, a complete result is not.
	if resp.StatusCode == 200 {
		lines := ndjsonLines(t, body)
		last := lines[len(lines)-1]
		if _, ok := last["error"]; !ok {
			t.Fatalf("nanosecond deadline produced a complete stream: %v", last)
		}
	} else if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}
}

// TestWorkerPoolBounds floods a single-worker server and checks that the
// pool never runs more than one query at once.
func TestWorkerPoolBounds(t *testing.T) {
	st := testStore(t, 50, 3)
	srv := New(st, Options{Workers: 1, CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?p=" + url.QueryEscape("<http://ex/likes>"))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := srv.Snapshot().InFlight; got != 0 {
		t.Fatalf("in-flight count %d after drain, want 0", got)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	var disabled *lruCache[int]
	if _, ok := disabled.Get("x"); ok {
		t.Fatal("nil cache returned a value")
	}
	disabled.Put("x", 1) // must not panic
	zero := newLRU[int](-1)
	zero.Put("x", 1)
	if _, ok := zero.Get("x"); ok {
		t.Fatal("disabled cache stored a value")
	}
}
