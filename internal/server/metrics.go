package server

import (
	"net/http"
	"runtime"
	"time"

	"rdfindexes/internal/obs"
)

// initMetrics builds the server's metric registry: request/rejection
// counters (the same *obs.Counter values the handlers increment — one
// write, two surfaces), latency histograms for the whole request and
// for each pipeline stage, callback-read cache and slow-query counters
// (maintained by the caches and the slow log themselves, so exposition
// cannot double-count), and runtime/store gauges evaluated at scrape
// time. Registration allocates; everything the request path touches
// afterwards is lock-free.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r

	const reqName = "rdf_requests_total"
	const reqHelp = "Requests accepted per endpoint"
	s.protocols = r.Counter(reqName, `endpoint="sparql"`, reqHelp)
	s.queries = r.Counter(reqName, `endpoint="query"`, reqHelp)
	s.sparqls = r.Counter(reqName, `endpoint="ndjson"`, reqHelp)
	s.inserts = r.Counter(reqName, `endpoint="insert"`, reqHelp)
	s.deletes = r.Counter(reqName, `endpoint="delete"`, reqHelp)

	const rejName = "rdf_rejected_total"
	const rejHelp = "Rejected requests by cause"
	s.rejectedBusy = r.Counter(rejName, `cause="busy"`, rejHelp)
	s.rejectedRate = r.Counter(rejName, `cause="rate_limited"`, rejHelp)
	s.rejectedBrk = r.Counter(rejName, `cause="breaker_open"`, rejHelp)
	s.rejectedStale = r.Counter(rejName, `cause="stale_min_gen"`, rejHelp)

	s.panics = r.Counter("rdf_panics_total", "", "Handler panics converted to 500s")
	s.failed = r.Counter("rdf_failed_total", "", "Requests ending in an error")

	s.reqHist = r.Histogram("rdf_request_duration_seconds", "",
		"End-to-end latency of protocol endpoint requests")
	for st := 0; st < obs.NumStages; st++ {
		s.stageHist[st] = r.Histogram("rdf_stage_duration_seconds",
			`stage="`+obs.Stage(st).String()+`"`,
			"Per-stage latency of protocol endpoint requests")
	}

	const cacheName = "rdf_cache_events_total"
	const cacheHelp = "Cache hits, misses and generation flushes per cache"
	r.CounterFunc(cacheName, `cache="result",event="hit"`, cacheHelp,
		func() uint64 { h, _ := s.results.Counters(); return h })
	r.CounterFunc(cacheName, `cache="result",event="miss"`, cacheHelp,
		func() uint64 { _, m := s.results.Counters(); return m })
	r.CounterFunc(cacheName, `cache="result",event="flush"`, cacheHelp, s.results.Flushes)
	r.CounterFunc(cacheName, `cache="plan",event="hit"`, cacheHelp,
		func() uint64 { h, _ := s.plans.Counters(); return h })
	r.CounterFunc(cacheName, `cache="plan",event="miss"`, cacheHelp,
		func() uint64 { _, m := s.plans.Counters(); return m })
	r.CounterFunc(cacheName, `cache="plan",event="flush"`, cacheHelp, s.plans.Flushes)

	const slowName = "rdf_slow_queries_total"
	const slowHelp = "Queries over the slow-query threshold, by log outcome"
	r.CounterFunc(slowName, `outcome="logged"`, slowHelp, s.slow.Logged)
	r.CounterFunc(slowName, `outcome="suppressed"`, slowHelp, s.slow.Suppressed)

	r.GaugeFunc("rdf_goroutines", "", "Live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("rdf_heap_inuse_bytes", "", "Bytes in in-use heap spans",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.GaugeFunc("rdf_in_flight_requests", "", "Requests currently holding a worker slot",
		func() float64 { return float64(len(s.sem)) })
	r.GaugeFunc("rdf_store_generation", "", "Write generation of the serving view",
		func() float64 { _, gen := s.view(); return float64(gen) })
	r.GaugeFunc("rdf_store_triples", "", "Triples in the serving view",
		func() float64 { st, _ := s.view(); return float64(st.Index.NumTriples()) })
	r.GaugeFunc("rdf_quarantined_shards", "", "Shard sections excluded by a degraded open",
		func() float64 { st, _ := s.view(); return float64(len(st.Integrity.Quarantined)) })
	r.GaugeFunc("rdf_wal_bytes", "", "Size of the write-ahead log (0 on read-only stores)",
		func() float64 {
			if s.mut == nil {
				return 0
			}
			return float64(s.mut.WALBytes())
		})
	r.GaugeFunc("rdf_breaker_open", "", "1 while the write-path circuit breaker is open",
		func() float64 {
			if s.brk != nil && s.brk.open(s.now()) {
				return 1
			}
			return 0
		})

	// Replication metrics register only on the roles that have them, so
	// a standalone server's exposition stays role-accurate.
	if f := s.cfg.Replica; f != nil {
		r.GaugeFunc("rdf_replication_lag_seconds", "",
			"Seconds since the replica last confirmed the leader's commit offset",
			func() float64 { return f.Stats().LagSeconds })
		r.GaugeFunc("rdf_replica_last_seq", "",
			"Last WAL sequence number applied in the current epoch",
			func() float64 { return float64(f.Stats().LastSeq) })
		r.GaugeFunc("rdf_replica_ready", "",
			"1 while the replica is connected and caught up",
			func() float64 {
				if f.Ready() {
					return 1
				}
				return 0
			})
		r.CounterFunc("rdf_replica_reconnects_total", "",
			"Replication link reconnects", func() uint64 { return f.Stats().Reconnects })
		r.CounterFunc("rdf_replica_snapshots_total", "",
			"Full-snapshot catch-ups installed", func() uint64 { return f.Stats().SnapshotsInstalled })
		r.CounterFunc("rdf_replica_records_applied_total", "",
			"Replicated WAL records applied", func() uint64 { return f.Stats().RecordsApplied })
	}
	if l := s.cfg.ReplLeader; l != nil {
		r.GaugeFunc("rdf_repl_followers", "",
			"Connected replication followers",
			func() float64 { return float64(l.Stats().Followers) })
		r.CounterFunc("rdf_repl_records_shipped_total", "",
			"WAL records shipped to followers", func() uint64 { return l.Stats().RecordsShipped })
		r.CounterFunc("rdf_repl_snapshots_sent_total", "",
			"Full snapshots streamed to followers", func() uint64 { return l.Stats().SnapshotsSent })
	}
}

// observeRequest records one finished protocol request into the
// end-to-end and per-stage latency histograms. Stages a request never
// entered (zero duration) are skipped so their histograms describe only
// requests that actually exercised them.
func (s *Server) observeRequest(tr *obs.Trace, total time.Duration) {
	s.reqHist.Observe(total)
	for i := range s.stageHist {
		if d := tr.Stages[i]; d > 0 {
			s.stageHist[i].Observe(d)
		}
	}
}

// handleMetrics serves the Prometheus text exposition. Like /stats it
// bypasses the worker pool and the rate limiter: a scrape reads atomics
// and runtime stats, never the index, and throttling it would blind the
// monitoring that explains the throttling.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	s.reg.WritePrometheus(w)
}
