package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// Replication-aware serving. A server constructed with Options.Replica
// is a read replica: its store is owned by the replication follower,
// writes are refused with the leader's address, /readyz reflects
// catch-up state, and the min-gen consistency token is checked against
// the follower's applied leader generation instead of the local view
// generation.

// generationHeader is the response header carrying the generation token
// a client can later present via min-gen for read-your-writes.
const generationHeader = "X-RDF-Generation"

// leaderHeader tells a client that hit a replica's write endpoint where
// the writer lives.
const leaderHeader = "X-RDF-Leader"

// generationToken returns the consistency token for a response served
// from the view at gen. On a replica the token space is the leader's
// write generations — the numbers clients got back from their writes —
// tracked as the follower's applied generation; locally published view
// generations would not be comparable. Tokens are scoped to one leader
// session: a leader restart restarts the space, so clients must not
// persist them.
func (s *Server) generationToken(gen uint64) uint64 {
	if s.cfg.Replica != nil {
		return s.cfg.Replica.AppliedGeneration()
	}
	return gen
}

// checkMinGen enforces the min-gen read-your-writes token: a client
// that wrote at generation G sends min-gen=G and must never see a view
// older than G. A replica that has not yet applied G answers 503 with a
// jittered Retry-After instead of serving stale data; a malformed token
// is the client's error. Returns false when the response has been
// written.
func (s *Server) checkMinGen(w http.ResponseWriter, raw string, gen uint64) bool {
	if raw == "" {
		return true
	}
	min, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Errorf("min-gen %q is not a generation number", raw))
		return false
	}
	have := s.generationToken(gen)
	if have >= min {
		return true
	}
	s.rejectedStale.Add(1)
	setRetryAfter(w, 1)
	httpError(w, http.StatusServiceUnavailable,
		fmt.Errorf("view at generation %d has not caught up to min-gen %d; retry shortly", have, min))
	return false
}

// handleReadyz is the readiness probe, split from /healthz liveness so
// load balancers drain a pod that is alive but must not take traffic: a
// replica still catching up (or disconnected), or a store serving
// degraded with quarantined shards. Liveness stays green in both cases
// — restarting would not help.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if f := s.cfg.Replica; f != nil && !f.Ready() {
		setRetryAfter(w, 1)
		st := f.Stats()
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: replica catching up (connected=%v seq=%d lag=%.2fs leader=%s)\n",
			st.Connected, st.LastSeq, st.LagSeconds, st.Leader)
		return
	}
	st, _ := s.view()
	if q := st.Integrity.Quarantined; len(q) > 0 {
		setRetryAfter(w, 1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: degraded, %d of %d shards quarantined %v\n", len(q), st.Shards(), q)
		return
	}
	fmt.Fprintln(w, "ready")
}
