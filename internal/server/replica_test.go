package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"rdfindexes/internal/repl"
	"rdfindexes/internal/store"
)

// TestMinGenToken exercises the read-your-writes consistency token on a
// single (leader) server: a write returns a generation, a read carrying
// min-gen at or below it succeeds, a min-gen from the future answers
// 503 + Retry-After, and a malformed token is the client's 400.
func TestMinGenToken(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 10, 2, 0)
	srv := NewMutable(m, Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := postForm(t, ts, "/insert", url.Values{
		"s": {"<http://ex/minGen>"}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/p0>"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("insert: %d %q", resp.StatusCode, body)
	}
	var wr store.WriteResult
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Generation == 0 {
		t.Fatalf("write result carries no generation: %+v", wr)
	}
	if h := resp.Header.Get(generationHeader); h != strconv.FormatUint(wr.Generation, 10) {
		t.Fatalf("write %s header %q, body generation %d", generationHeader, h, wr.Generation)
	}

	q := "/query?limit=1&min-gen="
	if resp, body = get(t, ts, q+strconv.FormatUint(wr.Generation, 10)); resp.StatusCode != 200 {
		t.Fatalf("satisfied min-gen: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get(generationHeader) == "" {
		t.Fatalf("read without a %s token", generationHeader)
	}
	resp, body = get(t, ts, q+strconv.FormatUint(wr.Generation+100, 10))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("future min-gen: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stale 503 without Retry-After")
	}
	if resp, body = get(t, ts, q+"banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min-gen: %d %q", resp.StatusCode, body)
	}

	var stats Stats
	_, body = get(t, ts, "/stats")
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RejectedStale != 1 {
		t.Fatalf("stale rejection not counted: %+v", stats)
	}
}

// TestReplicaServing wires a real leader + follower pair and serves the
// follower: writes are refused with the leader's address, /readyz
// tracks catch-up, reads answer with the leader's generation token, and
// a min-gen ahead of the applied generation is refused rather than
// served stale.
func TestReplicaServing(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 10, 2, -1)
	leader, err := repl.NewLeader(m, repl.LeaderOptions{HeartbeatInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go leader.Serve(ln)
	defer leader.Close()

	f, err := repl.OpenFollower(dir+"/replica.idx", ln.Addr().String(), repl.FollowerOptions{
		ReadTimeout: 250 * time.Millisecond,
		BackoffMin:  time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)
	defer f.Close()

	srv := NewMutable(f.Mutable(), Options{Workers: 2, Replica: f})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Writes belong on the leader.
	resp, body := postForm(t, ts, "/insert", url.Values{
		"s": {"<http://ex/a>"}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/p0>"},
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica insert: %d %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get(leaderHeader); got != ln.Addr().String() {
		t.Fatalf("%s = %q, want %q", leaderHeader, got, ln.Addr())
	}

	// Readiness follows catch-up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = get(t, ts, "/readyz")
		if resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never became ready: %d %q", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Write on the leader, then read-your-writes through the replica.
	res, err := m.Insert("<http://ex/rw>", "<http://ex/knows>", "<http://ex/p0>")
	if err != nil {
		t.Fatal(err)
	}
	q := "/query?limit=1&min-gen=" + strconv.FormatUint(res.Generation, 10)
	for {
		resp, body = get(t, ts, q)
		if resp.StatusCode == 200 {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("catch-up read: %d %q hdr %v", resp.StatusCode, body, resp.Header)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never applied generation %d: %d %q", res.Generation, resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp.Header.Get(generationHeader) == "" {
		t.Fatalf("replica read without a %s token", generationHeader)
	}

	// A token from far in the future stays refused, never served stale.
	resp, body = get(t, ts, "/query?limit=1&min-gen="+strconv.FormatUint(res.Generation+1000, 10))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("future min-gen on replica: %d %q", resp.StatusCode, body)
	}

	// /stats surfaces the replication role.
	var stats Stats
	_, body = get(t, ts, "/stats")
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replication == nil || !stats.Replication.Connected {
		t.Fatalf("replica stats missing replication block: %s", body)
	}
}
