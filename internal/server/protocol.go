package server

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"rdfindexes/internal/core"
	"rdfindexes/internal/server/results"
	"rdfindexes/internal/sparql"
)

// The SPARQL 1.1 Protocol endpoint. Queries arrive as GET ?query=, as a
// POST body with Content-Type application/sparql-query, or as the query
// field of a POST form; results stream in whichever SPARQL result
// format (JSON, XML, CSV, TSV) the Accept header negotiates. Responses
// carry an ETag derived from the store's write generation, so a client
// or intermediary cache revalidates with one conditional request and a
// 304 for as long as no write has been merged — and no longer.

// sparqlQueryType is the protocol's direct-POST media type.
const sparqlQueryType = "application/sparql-query"

// maxQueryBytes bounds a POSTed query body; a store query is text a
// human or planner wrote, not bulk data.
const maxQueryBytes = 1 << 20

// Deprecation metadata for the /v1/ NDJSON dialect and its root
// aliases: deprecated as of 2026-01-01 (RFC 9745 @unix-time form),
// removal not before 2027-01-01, successor is the protocol endpoint.
const (
	deprecationDate = "@1767225600"
	sunsetDate      = "Fri, 01 Jan 2027 00:00:00 GMT"
	successorLink   = `</sparql>; rel="successor-version"`
)

// deprecated stamps the dialect-retirement headers on a legacy
// endpoint's responses before the handler runs.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd.Set("Deprecation", deprecationDate)
		hd.Set("Sunset", sunsetDate)
		hd.Set("Link", successorLink)
		h(w, r)
	}
}

// gzipPool recycles gzip writers across responses; a gzip.Writer holds
// ~1.4 MiB of window state, far too much to build per request.
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// wantsGzip reports whether the Accept-Encoding header admits gzip with
// a nonzero quality.
func wantsGzip(accept string) bool {
	for _, elem := range strings.Split(accept, ",") {
		parts := strings.Split(elem, ";")
		if strings.ToLower(strings.TrimSpace(parts[0])) != "gzip" {
			continue
		}
		for _, p := range parts[1:] {
			if k, v, ok := strings.Cut(p, "="); ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && f <= 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// etagMatch reports whether an If-None-Match header matches the entity
// tag. Weak-validator prefixes compare equal: byte-identical bodies are
// a stronger guarantee than the weak comparison needs.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || strings.TrimPrefix(c, "W/") == etag {
			return true
		}
	}
	return false
}

// protocolQuery extracts the query text from whichever of the three
// protocol request forms was used, or describes the failure as an HTTP
// status.
func protocolQuery(r *http.Request) (string, int, error) {
	switch r.Method {
	case http.MethodGet:
		if qs := r.URL.Query().Get("query"); qs != "" {
			return qs, 0, nil
		}
		return "", http.StatusBadRequest, errors.New("missing query parameter")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.ToLower(strings.TrimSpace(ct)) {
		case sparqlQueryType:
			body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
			if err != nil {
				return "", http.StatusBadRequest, fmt.Errorf("reading query body: %w", err)
			}
			if len(body) > maxQueryBytes {
				return "", http.StatusRequestEntityTooLarge,
					fmt.Errorf("query body exceeds %d bytes", maxQueryBytes)
			}
			if len(body) == 0 {
				return "", http.StatusBadRequest, errors.New("empty query body")
			}
			return string(body), 0, nil
		case "application/x-www-form-urlencoded", "":
			if qs := r.PostFormValue("query"); qs != "" {
				return qs, 0, nil
			}
			return "", http.StatusBadRequest, errors.New("missing query form field")
		default:
			return "", http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported request media type %q (use %s or a form)", ct, sparqlQueryType)
		}
	default:
		return "", http.StatusMethodNotAllowed, errors.New("protocol queries use GET or POST")
	}
}

// handleProtocol serves one SPARQL protocol query.
func (s *Server) handleProtocol(w http.ResponseWriter, r *http.Request) {
	s.protocols.Add(1)
	qs, status, err := protocolQuery(r)
	if err != nil {
		if status == http.StatusMethodNotAllowed {
			w.Header().Set("Allow", "GET, POST")
		}
		s.failed.Add(1)
		httpError(w, status, err)
		return
	}
	f, ok := results.Negotiate(r.Header.Get("Accept"))
	if !ok {
		s.failed.Add(1)
		httpError(w, http.StatusNotAcceptable,
			fmt.Errorf("no acceptable result format; supported: %s", results.SupportedTypes()))
		return
	}
	limit, err := parseLimitValue(r.URL.Query().Get("limit"))
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}

	st, gen := s.view()
	// The representation is fully determined by (write generation,
	// format): the view is immutable and query evaluation is
	// deterministic over it. That makes the pair a sound strong
	// validator — a matching If-None-Match revalidates without parsing,
	// planning or touching the index, which is the entire point of
	// keying revalidation on the RCU generation.
	h := w.Header()
	etag := `"g` + strconv.FormatUint(gen, 10) + `-` + f.String() + `"`
	h.Set("ETag", etag)
	h.Set("Vary", "Accept, Accept-Encoding")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	translated, err := st.TranslateQuery(qs)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := sparql.Parse(translated)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// norm matches the NDJSON dialect's plan-cache key on purpose: both
	// endpoints evaluate the same BGP, so they share cached orders. The
	// result-cache key adds the format — the cached bytes are the
	// serialized (uncompressed) response body.
	norm := fmt.Sprintf("g%d|%s", gen, q.String())
	key := "p|" + f.String() + "|" + norm + "|" + strconv.Itoa(limit)
	gz := wantsGzip(r.Header.Get("Accept-Encoding"))
	if body, ok := s.results.Get(key); ok {
		serveProtocolCached(w, f, body, gz)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejectBusy(w)
		return
	}
	defer s.release()

	order, planCached := s.plans.Get(norm)
	if !planCached {
		order = sparql.Plan(q)
		s.plans.Put(norm, order)
	}

	qc := core.AcquireQueryCtx()
	defer qc.Release()

	// The write path is serializer -> capture -> gzip -> client: the
	// capture tees the uncompressed serialization (so a cache entry
	// serves later clients with or without gzip), and compression
	// happens once, downstream of it.
	cw := &capture{w: w, max: s.cfg.CacheMaxBytes}
	h.Set("Content-Type", f.ContentType())
	h.Set("X-Cache", "miss")
	var zw *gzip.Writer
	if gz {
		h.Set("Content-Encoding", "gzip")
		zw = gzipPool.Get().(*gzip.Writer)
		zw.Reset(w)
		cw.w = zw
	}

	wr := results.Acquire(f, st, cw)
	defer wr.Release()
	wr.Begin(q.Vars)

	execCtx, stop := context.WithCancel(ctx)
	defer stop()
	rows, truncated := 0, false
	_, err = sparql.StreamWithOrder(execCtx, q, ctxStore{x: st.Index, qc: qc}, order, func(b sparql.Bindings) {
		if limit >= 0 && rows >= limit {
			if !truncated {
				truncated = true
				stop()
			}
			return
		}
		wr.WriteSolution(b)
		rows++
	})
	if err != nil && !truncated {
		// The status line and head are already on the wire, so a
		// mid-stream failure cannot become an error response; ending the
		// stream early leaves a syntactically truncated body the client
		// detects, and poisoning the capture keeps it out of the cache.
		cw.poisoned = true
		s.failed.Add(1)
	} else {
		wr.End()
	}
	if err := wr.Flush(); err != nil {
		cw.poisoned = true
	}
	if zw != nil {
		// Close flushes the gzip trailer but Reset reopens the writer,
		// so pooled reuse is safe.
		zw.Close()
		gzipPool.Put(zw)
	}
	if body, ok := cw.cacheable(); ok {
		s.results.Put(key, body)
	}
}

// serveProtocolCached answers from a cached uncompressed serialization,
// compressing per this client's Accept-Encoding.
func serveProtocolCached(w http.ResponseWriter, f results.Format, body []byte, gz bool) {
	h := w.Header()
	h.Set("Content-Type", f.ContentType())
	h.Set("X-Cache", "hit")
	if !gz {
		w.Write(body)
		return
	}
	h.Set("Content-Encoding", "gzip")
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(w)
	zw.Write(body)
	zw.Close()
	gzipPool.Put(zw)
}
