package server

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/obs"
	"rdfindexes/internal/server/results"
	"rdfindexes/internal/sparql"
)

// The SPARQL 1.1 Protocol endpoint. Queries arrive as GET ?query=, as a
// POST body with Content-Type application/sparql-query, or as the query
// field of a POST form; results stream in whichever SPARQL result
// format (JSON, XML, CSV, TSV) the Accept header negotiates. Responses
// carry an ETag derived from the store's write generation, so a client
// or intermediary cache revalidates with one conditional request and a
// 304 for as long as no write has been merged — and no longer.

// sparqlQueryType is the protocol's direct-POST media type.
const sparqlQueryType = "application/sparql-query"

// maxQueryBytes bounds a POSTed query body; a store query is text a
// human or planner wrote, not bulk data.
const maxQueryBytes = 1 << 20

// Deprecation metadata for the /v1/ NDJSON dialect and its root
// aliases: deprecated as of 2026-01-01 (RFC 9745 @unix-time form),
// removal not before 2027-01-01, successor is the protocol endpoint.
const (
	deprecationDate = "@1767225600"
	sunsetDate      = "Fri, 01 Jan 2027 00:00:00 GMT"
	successorLink   = `</sparql>; rel="successor-version"`
)

// deprecated stamps the dialect-retirement headers on a legacy
// endpoint's responses before the handler runs.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd.Set("Deprecation", deprecationDate)
		hd.Set("Sunset", sunsetDate)
		hd.Set("Link", successorLink)
		h(w, r)
	}
}

// gzipPool recycles gzip writers across responses; a gzip.Writer holds
// ~1.4 MiB of window state, far too much to build per request.
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// wantsGzip reports whether the Accept-Encoding header admits gzip with
// a nonzero quality.
func wantsGzip(accept string) bool {
	for _, elem := range strings.Split(accept, ",") {
		parts := strings.Split(elem, ";")
		if strings.ToLower(strings.TrimSpace(parts[0])) != "gzip" {
			continue
		}
		for _, p := range parts[1:] {
			if k, v, ok := strings.Cut(p, "="); ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && f <= 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// etagMatch reports whether an If-None-Match header matches the entity
// tag. Weak-validator prefixes compare equal: byte-identical bodies are
// a stronger guarantee than the weak comparison needs.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || strings.TrimPrefix(c, "W/") == etag {
			return true
		}
	}
	return false
}

// protocolQuery extracts the query text from whichever of the three
// protocol request forms was used, or describes the failure as an HTTP
// status.
func protocolQuery(r *http.Request) (string, int, error) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		if qs := r.URL.Query().Get("query"); qs != "" {
			return qs, 0, nil
		}
		return "", http.StatusBadRequest, errors.New("missing query parameter")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.ToLower(strings.TrimSpace(ct)) {
		case sparqlQueryType:
			body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
			if err != nil {
				return "", http.StatusBadRequest, fmt.Errorf("reading query body: %w", err)
			}
			if len(body) > maxQueryBytes {
				return "", http.StatusRequestEntityTooLarge,
					fmt.Errorf("query body exceeds %d bytes", maxQueryBytes)
			}
			if len(body) == 0 {
				return "", http.StatusBadRequest, errors.New("empty query body")
			}
			return string(body), 0, nil
		case "application/x-www-form-urlencoded", "":
			if qs := r.PostFormValue("query"); qs != "" {
				return qs, 0, nil
			}
			return "", http.StatusBadRequest, errors.New("missing query form field")
		default:
			return "", http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported request media type %q (use %s or a form)", ct, sparqlQueryType)
		}
	default:
		return "", http.StatusMethodNotAllowed, errors.New("protocol queries use GET, HEAD or POST")
	}
}

// timedWriter accumulates the wall time spent in downstream Write
// calls. Placed between the capture tee and the compression/client
// side, it prices the render stage — buffered flushes, gzip and client
// I/O — at two clock reads per flushed batch (the serializers flush in
// multi-KiB chunks), never per row.
type timedWriter struct {
	w io.Writer
	d time.Duration
}

func (t *timedWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := t.w.Write(p)
	t.d += time.Since(start)
	return n, err
}

// serverTiming renders the pre-stream Server-Timing header: the stages
// that completed before the first body byte, plus the result-cache
// verdict. The exec/render/total entries arrive in an HTTP trailer
// (chunked responses only) because they are unknowable up front.
func serverTiming(tr *obs.Trace, cache string) string {
	return fmt.Sprintf("cache;desc=%q, queue;dur=%.3f, parse;dur=%.3f, plan;dur=%.3f",
		cache,
		float64(tr.Stages[obs.StageQueue])/1e6,
		float64(tr.Stages[obs.StageParse])/1e6,
		float64(tr.Stages[obs.StagePlan])/1e6)
}

// notModified reports whether the request's conditional headers prove
// the client's copy current: If-None-Match against the generation ETag
// (which takes precedence per RFC 9110), else If-Modified-Since
// against the view's publication time at whole-second granularity.
func notModified(r *http.Request, etag string, modified time.Time) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		return etagMatch(inm, etag)
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" && !modified.IsZero() {
		if t, err := http.ParseTime(ims); err == nil {
			return !modified.Truncate(time.Second).After(t)
		}
	}
	return false
}

// handleProtocol serves one SPARQL protocol query. Beyond the
// protocol's three request forms it answers HEAD with validators only,
// honors If-None-Match/If-Modified-Since, and accepts two extensions:
// ?limit= (row cap) and ?explain=1 (the plan and per-operator
// cardinalities as JSON instead of results; see explain.go). Every
// request carries a stage trace whose timings feed the latency
// histograms, a Server-Timing header/trailer pair and — past the
// configured threshold — the slow-query log.
func (s *Server) handleProtocol(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.protocols.Add(1)
	tr := obs.AcquireTrace()
	defer tr.Release()
	qs, status, err := protocolQuery(r)
	if err != nil {
		if status == http.StatusMethodNotAllowed {
			w.Header().Set("Allow", "GET, HEAD, POST")
		}
		s.failed.Add(1)
		httpError(w, status, err)
		return
	}
	f, ok := results.Negotiate(r.Header.Get("Accept"))
	if !ok {
		s.failed.Add(1)
		httpError(w, http.StatusNotAcceptable,
			fmt.Errorf("no acceptable result format; supported: %s", results.SupportedTypes()))
		return
	}
	limit, err := parseLimitValue(r.URL.Query().Get("limit"))
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	explain := r.URL.Query().Get("explain") == "1"

	st, gen := s.view()
	// The min-gen consistency token gates the whole request — including
	// revalidation: a 304 against a stale view would be just as stale as
	// a 200 from it.
	if !s.checkMinGen(w, r.URL.Query().Get("min-gen"), gen) {
		return
	}
	w.Header().Set(generationHeader, strconv.FormatUint(s.generationToken(gen), 10))
	// The representation is fully determined by (write generation,
	// format): the view is immutable and query evaluation is
	// deterministic over it. That makes the pair a sound strong
	// validator — a matching If-None-Match revalidates without parsing,
	// planning or touching the index, which is the entire point of
	// keying revalidation on the RCU generation. Last-Modified carries
	// the view's publication time (the store file's mtime when
	// read-only) as the weaker fallback validator for clients that only
	// speak If-Modified-Since. An explain response is volatile
	// (timings), so it neither carries the validators nor honors the
	// conditionals.
	h := w.Header()
	if !st.Modified.IsZero() {
		h.Set("Last-Modified", st.Modified.UTC().Format(http.TimeFormat))
	}
	if !explain {
		etag := `"g` + strconv.FormatUint(gen, 10) + `-` + f.String() + `"`
		h.Set("ETag", etag)
		h.Set("Vary", "Accept, Accept-Encoding")
		if notModified(r, etag, st.Modified) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	pt := time.Now()
	translated, err := st.TranslateQuery(qs)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := sparql.Parse(translated)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr.AddStage(obs.StageParse, time.Since(pt))

	if r.Method == http.MethodHead {
		// The validators and negotiated type above are everything a HEAD
		// asks for; execution is skipped (the body would be thrown away).
		h.Set("Content-Type", f.ContentType())
		w.WriteHeader(http.StatusOK)
		return
	}

	// norm matches the NDJSON dialect's plan-cache key on purpose: both
	// endpoints evaluate the same BGP, so they share cached orders. The
	// result-cache key adds the format — the cached bytes are the
	// serialized (uncompressed) response body.
	norm := fmt.Sprintf("g%d|%s", gen, q.String())
	key := "p|" + f.String() + "|" + norm + "|" + strconv.Itoa(limit)
	gz := wantsGzip(r.Header.Get("Accept-Encoding"))
	if !explain {
		if body, ok := s.results.Get(key); ok {
			h.Set("Server-Timing", serverTiming(tr, "hit"))
			serveProtocolCached(w, f, body, gz)
			s.observeRequest(tr, time.Since(t0))
			return
		}
	}

	qt := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejectBusy(w)
		return
	}
	defer s.release()
	tr.AddStage(obs.StageQueue, time.Since(qt))

	plt := time.Now()
	order, planCached := s.plans.Get(norm)
	if !planCached {
		order = sparql.Plan(q)
		s.plans.Put(norm, order)
	}
	tr.AddStage(obs.StagePlan, time.Since(plt))

	qc := core.AcquireQueryCtx()
	defer qc.Release()

	if explain {
		s.serveExplain(ctx, w, st, gen, qs, q, order, planCached, limit, qc, tr, t0)
		return
	}

	// The write path is serializer -> capture -> timer -> gzip ->
	// client: the capture tees the uncompressed serialization (so a
	// cache entry serves later clients with or without gzip), and
	// everything downstream of the tee — gzip compression and client
	// I/O — is what the timer prices as the render stage.
	cw := &capture{w: w, max: s.cfg.CacheMaxBytes}
	h.Set("Content-Type", f.ContentType())
	h.Set("X-Cache", "miss")
	h.Set("Server-Timing", serverTiming(tr, "miss"))
	var zw *gzip.Writer
	out := io.Writer(w)
	if gz {
		h.Set("Content-Encoding", "gzip")
		zw = gzipPool.Get().(*gzip.Writer)
		zw.Reset(w)
		out = zw
	}
	tw := &timedWriter{w: out}
	cw.w = tw

	wr := results.Acquire(f, st, cw)
	defer wr.Release()
	wr.Begin(q.Vars)

	execCtx, stop := context.WithCancel(ctx)
	defer stop()
	et := time.Now()
	rows, truncated := 0, false
	_, err = sparql.StreamTraced(execCtx, q, ctxStore{x: st.Index, qc: qc}, order, tr, func(b sparql.Bindings) {
		if limit >= 0 && rows >= limit {
			if !truncated {
				truncated = true
				stop()
			}
			return
		}
		wr.WriteSolution(b)
		rows++
	})
	// Execution and serialization interleave on the streaming path; the
	// writer-side timer separates them: exec is the stream wall time
	// minus whatever of it was spent pushing bytes downstream.
	streamWall := time.Since(et)
	renderDuringStream := tw.d
	errMsg := ""
	if err != nil && !truncated {
		// The status line and head are already on the wire, so a
		// mid-stream failure cannot become an error response; ending the
		// stream early leaves a syntactically truncated body the client
		// detects, and poisoning the capture keeps it out of the cache.
		cw.poisoned = true
		s.failed.Add(1)
		errMsg = err.Error()
	} else {
		wr.End()
	}
	if err := wr.Flush(); err != nil {
		cw.poisoned = true
	}
	if zw != nil {
		// Close flushes the gzip trailer but Reset reopens the writer,
		// so pooled reuse is safe.
		zw.Close()
		gzipPool.Put(zw)
	}
	exec := streamWall - renderDuringStream
	if exec < 0 {
		exec = 0
	}
	tr.AddStage(obs.StageExec, exec)
	tr.AddStage(obs.StageRender, tw.d)
	if body, ok := cw.cacheable(); ok {
		s.results.Put(key, body)
	}
	total := time.Since(t0)
	// The post-stream stages travel as a trailer — best effort: they
	// reach clients on chunked responses that read trailers, and cost
	// nothing otherwise.
	h.Set(http.TrailerPrefix+"Server-Timing", fmt.Sprintf(
		"exec;dur=%.3f, render;dur=%.3f, total;dur=%.3f",
		float64(exec)/1e6, float64(tw.d)/1e6, float64(total)/1e6))
	s.observeRequest(tr, total)
	s.slow.Record("sparql", qs, gen, rows, truncated, errMsg, total, tr)
}

// serveProtocolCached answers from a cached uncompressed serialization,
// compressing per this client's Accept-Encoding.
func serveProtocolCached(w http.ResponseWriter, f results.Format, body []byte, gz bool) {
	h := w.Header()
	h.Set("Content-Type", f.ContentType())
	h.Set("X-Cache", "hit")
	if !gz {
		w.Write(body)
		return
	}
	h.Set("Content-Encoding", "gzip")
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(w)
	zw.Write(body)
	zw.Close()
	gzipPool.Put(zw)
}
