package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/rdf"
	"rdfindexes/internal/shard"
	"rdfindexes/internal/store"
)

// testShardedStore builds the same social graph as testStore but
// partitioned across shards.
func testShardedStore(t testing.TB, people, likesPer, shards int) *store.Store {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < people; i++ {
		fmt.Fprintf(&sb, "<http://ex/p%d> <http://ex/knows> <http://ex/p%d> .\n", i, (i+1)%people)
		for j := 0; j < likesPer; j++ {
			fmt.Fprintf(&sb, "<http://ex/p%d> <http://ex/likes> <http://ex/item%d> .\n", i, (i+j)%(people/2+1))
		}
	}
	statements, err := rdf.ParseAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	d, dicts, err := rdf.Encode(statements)
	if err != nil {
		t.Fatal(err)
	}
	x, err := shard.BuildSharded(d, core.Layout2Tp, shards)
	if err != nil {
		t.Fatal(err)
	}
	return &store.Store{Index: x, Dicts: dicts}
}

// TestServerShardedStore serves a sharded store through the full HTTP
// stack: pattern queries (routed and fan-out), BGP queries, and stats
// reporting the shard count.
func TestServerShardedStore(t *testing.T) {
	st := testShardedStore(t, 24, 3, 4)
	srv := New(st, Options{Workers: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Routed (bound subject) pattern.
	resp, body := get(t, ts, "/query?s=%3Chttp%3A%2F%2Fex%2Fp3%3E")
	if resp.StatusCode != 200 {
		t.Fatalf("routed query: status %d: %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(t, body)
	if n := lines[len(lines)-1]["matches"]; n != float64(4) {
		t.Fatalf("p3 has %v triples, want 4", n)
	}

	// Fan-out (subject unbound) pattern across all shards.
	resp, body = get(t, ts, "/query?p=%3Chttp%3A%2F%2Fex%2Fknows%3E")
	if resp.StatusCode != 200 {
		t.Fatalf("fan-out query: status %d: %s", resp.StatusCode, body)
	}
	lines = ndjsonLines(t, body)
	if n := lines[len(lines)-1]["matches"]; n != float64(24) {
		t.Fatalf("knows fan-out matched %v, want 24", n)
	}

	// BGP through the executor over the sharded index.
	resp, body = get(t, ts, "/v1/sparql?q="+
		"SELECT+%3Fx+%3Fy+WHERE+%7B+%3Fx+%3Chttp%3A%2F%2Fex%2Fknows%3E+%3Fy+.+%7D")
	if resp.StatusCode != 200 {
		t.Fatalf("sparql: status %d: %s", resp.StatusCode, body)
	}
	lines = ndjsonLines(t, body)
	if n := lines[len(lines)-1]["results"]; n != float64(24) {
		t.Fatalf("sparql results %v, want 24", n)
	}

	// Stats reports the partition width.
	resp, body = get(t, ts, "/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "\"shards\": 4") {
		t.Fatalf("stats missing shard count: %s", body)
	}
}

// TestPprofEndpoints pins the -pprof gate: profiling handlers exist
// only when Config.Pprof is set.
func TestPprofEndpoints(t *testing.T) {
	st := testStore(t, 6, 1)

	off := httptest.NewServer(New(st, Options{}))
	defer off.Close()
	if resp, _ := get(t, off, "/debug/pprof/"); resp.StatusCode != 404 {
		t.Fatalf("pprof off: /debug/pprof/ status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(New(st, Options{Pprof: true}))
	defer on.Close()
	resp, body := get(t, on, "/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Fatalf("pprof on: /debug/pprof/ status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles: %s", body)
	}
	if resp, _ := get(t, on, "/debug/pprof/cmdline"); resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}
