// Package server exposes a loaded store over HTTP for concurrent query
// serving. Every view served is immutable (see the concurrency contract
// in internal/core), so requests share it with no locking on the read
// path: each request draws a pooled core.QueryCtx for its scratch,
// executes under a deadline, and streams results. A server over a
// store.Mutable additionally accepts single-writer updates; reads then
// resolve against the RCU-published snapshot view current at request
// start.
//
// Endpoints:
//
//	GET/POST /sparql              SPARQL 1.1 Protocol query endpoint:
//	                              GET ?query= or POST (application/sparql-query
//	                              body, or form with query=); results stream as
//	                              SPARQL JSON, XML, CSV or TSV per the Accept
//	                              header (see internal/server/results)
//	GET  /v1/query?s=&p=&o=&limit= triple pattern -> NDJSON triples (deprecated)
//	GET  /v1/sparql?q=&limit=      BGP query -> NDJSON solutions (deprecated)
//	POST /v1/insert?s=&p=&o=       add one triple (mutable stores)
//	POST /v1/delete?s=&p=&o=       remove one triple (mutable stores)
//	GET  /stats                    store + server statistics as JSON
//	GET  /metrics                  Prometheus text-format metrics
//	GET  /healthz                  liveness probe (always 200 while serving)
//	GET  /readyz                   readiness probe (503 while a replica
//	                               catches up or the store serves degraded)
//	GET  /debug/pprof/*            runtime profiles (only with Options.Pprof)
//
// The /v1/ endpoints are the private NDJSON dialect that predates the
// protocol endpoint; they and their pre-versioning root aliases
// (/query, /insert, /delete) answer with Deprecation, Sunset and
// successor-version Link headers pointing clients at /sparql.
//
// Admission is a bounded worker pool: at most Options.Workers queries
// execute at once, later arrivals queue on their request context and are
// rejected with 503 when it expires before a slot frees. Repeated
// queries are answered from an LRU result cache keyed on the normalized
// (dictionary-resolved) query text without touching the index; BGP
// evaluation orders are cached in a separate plan cache. Both keys carry
// the store's write generation, and every changing write flushes both
// caches, so a write is never answered with pre-write results.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"rdfindexes/internal/core"
	"rdfindexes/internal/obs"
	"rdfindexes/internal/repl"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/store"
)

// slowLogMinGap is the slow-query log's sampling gap: at most one entry
// per second, so an overload that makes every query slow degrades to a
// heartbeat instead of amplifying itself with logging I/O.
const slowLogMinGap = time.Second

// Options tunes the server; zero fields take the documented defaults.
// It is the one public configuration surface: construction goes through
// New or NewMutable with an Options value, defaults are applied
// internally, and Validate rejects nonsense combinations up front for
// callers (like the CLI) that assemble Options from external input.
type Options struct {
	// Workers bounds the number of concurrently executing queries
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// Timeout is the per-request execution deadline, covering both queue
	// wait and evaluation (default 30s). Cancellation is observed at
	// batch-refill granularity, never per triple.
	Timeout time.Duration
	// CacheEntries is the result cache capacity in entries (default 256;
	// negative disables caching).
	CacheEntries int
	// CacheMaxBytes is the largest serialized response the result cache
	// stores (default 1 MiB); larger responses stream uncached.
	CacheMaxBytes int
	// PlanEntries is the BGP plan cache capacity (default 1024).
	PlanEntries int
	// Pprof exposes the runtime profiling endpoints under
	// /debug/pprof/* (CPU and heap profiles, goroutine dumps, execution
	// traces) so shard scaling and pool behavior can be profiled in
	// situ. Off by default: profiles reveal operational internals, so
	// enabling them is an explicit deployment decision.
	Pprof bool
	// RateLimit caps each client (by X-Forwarded-For or remote IP) to
	// this many requests per second on the query and write endpoints;
	// excess requests get 429 + Retry-After. 0 disables limiting
	// (default): it is an explicit deployment decision, like Pprof.
	RateLimit float64
	// RateBurst is the token-bucket burst per client (default
	// max(1, 2*RateLimit)): how far a briefly idle client may exceed the
	// steady rate.
	RateBurst int
	// BreakerThreshold opens the write-path circuit breaker after this
	// many consecutive internal write failures (WAL I/O or merge errors;
	// a client's bad terms never count). While open, writes fail fast
	// with 503 + Retry-After instead of rediscovering a broken disk per
	// request. Default 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// one probe write through (default 10s).
	BreakerCooldown time.Duration
	// SlowQuery is the slow-query log threshold: protocol queries whose
	// end-to-end time crosses it are written as structured JSON lines to
	// SlowQueryLog, sampled to at most one entry per second (suppressed
	// entries are counted in /metrics and /stats). 0 disables the log
	// (default).
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query entries (default os.Stderr
	// when SlowQuery is set). Writes are serialized internally.
	SlowQueryLog io.Writer
	// Replica marks this server as a WAL-shipping read replica: the
	// follower that owns the served store. Writes answer 403 with the
	// leader's address, /readyz reports catch-up state, min-gen reads
	// check the follower's applied leader generation, and replication
	// lag/position surface on /stats and /metrics. The server must be
	// built with NewMutable over Replica.Mutable().
	Replica *repl.Follower
	// ReplLeader, when set, exposes the WAL-shipping leader's follower
	// count and shipping counters through /stats and /metrics.
	ReplLeader *repl.Leader
}

// Config is the former name of Options.
//
// Deprecated: use Options. The fields are identical (Config is an
// alias), so existing callers compile unchanged; new code should name
// Options directly.
type Config = Options

// Validate reports the first nonsensical field combination, before
// withDefaults silently papers over it. The zero value is always valid.
// Negative values that carry meaning (CacheEntries disables the result
// cache, BreakerThreshold disables the breaker) pass; negatives that a
// default would mask do not.
func (c Options) Validate() error {
	switch {
	case c.Workers < 0:
		return fmt.Errorf("options: Workers %d is negative", c.Workers)
	case c.Timeout < 0:
		return fmt.Errorf("options: Timeout %v is negative", c.Timeout)
	case c.CacheMaxBytes < 0:
		return fmt.Errorf("options: CacheMaxBytes %d is negative", c.CacheMaxBytes)
	case c.PlanEntries < 0:
		return fmt.Errorf("options: PlanEntries %d is negative", c.PlanEntries)
	case c.RateLimit < 0:
		return fmt.Errorf("options: RateLimit %g is negative", c.RateLimit)
	case c.RateBurst < 0:
		return fmt.Errorf("options: RateBurst %d is negative", c.RateBurst)
	case c.BreakerCooldown < 0:
		return fmt.Errorf("options: BreakerCooldown %v is negative", c.BreakerCooldown)
	case c.SlowQuery < 0:
		return fmt.Errorf("options: SlowQuery %v is negative", c.SlowQuery)
	}
	return nil
}

func (c Options) withDefaults() Options {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 1 << 20
	}
	if c.PlanEntries == 0 {
		c.PlanEntries = 1024
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.SlowQuery > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	return c
}

// Server answers pattern and BGP queries over one shared store: either a
// fixed immutable store, or a mutable store whose reads go through
// RCU-published snapshot views and whose writes arrive on /insert and
// /delete.
type Server struct {
	st  *store.Store   // fixed read-only store (nil when mut is set)
	mut *store.Mutable // updatable store (nil when read-only)
	cfg Options
	mux *http.ServeMux

	sem     chan struct{} // bounded worker pool
	results *lruCache[[]byte]
	plans   *lruCache[[]int]

	limiter *rateLimiter // nil when Config.RateLimit is 0
	brk     *breaker     // nil when the breaker is disabled
	now     func() time.Time

	start time.Time

	// The request counters live in the metric registry (initMetrics) and
	// are incremented through these handles: one atomic write feeds
	// /metrics, /stats and the tests alike. The total rejection count is
	// derived as the sum of its three causes at read time.
	reg           *obs.Registry
	queries       *obs.Counter // pattern queries accepted (NDJSON dialect)
	sparqls       *obs.Counter // BGP queries accepted (NDJSON dialect)
	protocols     *obs.Counter // SPARQL protocol queries accepted
	inserts       *obs.Counter // /insert requests accepted
	deletes       *obs.Counter // /delete requests accepted
	rejectedBusy  *obs.Counter // 503s: pool saturated past deadline
	rejectedRate  *obs.Counter // 429s: client over its rate limit
	rejectedBrk   *obs.Counter // 503s: write-path circuit breaker open
	rejectedStale *obs.Counter // 503s: replica behind the min-gen token
	panics        *obs.Counter // handler panics converted to 500s
	failed        *obs.Counter // requests ending in an error

	// reqHist observes end-to-end protocol request latency; stageHist
	// breaks the same requests down by pipeline stage. slow is the
	// sampled slow-query log (disabled unless Options.SlowQuery is set —
	// a nil *obs.SlowLog swallows Record calls).
	reqHist   *obs.Histogram
	stageHist [obs.NumStages]*obs.Histogram
	slow      *obs.SlowLog
}

// New builds a read-only server over a loaded store.
func New(st *store.Store, cfg Options) *Server {
	s := newServer(cfg)
	s.st = st
	return s
}

// NewMutable builds a server over an updatable store: reads resolve
// against the store's current snapshot view, and the /insert and
// /delete endpoints accept writes.
func NewMutable(m *store.Mutable, cfg Options) *Server {
	s := newServer(cfg)
	s.mut = m
	return s
}

func newServer(cfg Options) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		results: newLRU[[]byte](cfg.CacheEntries),
		plans:   newLRU[[]int](cfg.PlanEntries),
		now:     time.Now,
		start:   time.Now(),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.SlowQuery > 0 {
		s.slow = obs.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQuery, slowLogMinGap)
	}
	s.initMetrics()
	s.mux = http.NewServeMux()
	// The root /sparql is the standards-compliant SPARQL 1.1 Protocol
	// endpoint. The private NDJSON dialect lives under /v1/ (and its
	// pre-versioning root aliases), answered with deprecation headers
	// steering clients to the protocol endpoint.
	s.mux.HandleFunc("/sparql", s.limited(s.handleProtocol))
	s.mux.HandleFunc("/v1/query", s.deprecated(s.limited(s.handleQuery)))
	s.mux.HandleFunc("/v1/sparql", s.deprecated(s.limited(s.handleSparql)))
	s.mux.HandleFunc("/v1/insert", s.deprecated(s.limited(s.handleInsert)))
	s.mux.HandleFunc("/v1/delete", s.deprecated(s.limited(s.handleDelete)))
	s.mux.HandleFunc("/query", s.deprecated(s.limited(s.handleQuery)))
	s.mux.HandleFunc("/insert", s.deprecated(s.limited(s.handleInsert)))
	s.mux.HandleFunc("/delete", s.deprecated(s.limited(s.handleDelete)))
	// The probes (/stats, /metrics, /healthz) stay unlimited:
	// rate-limiting them would blind the monitoring that explains the
	// 429s.
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	if cfg.Pprof {
		// Registered on the server's own mux (net/http/pprof's side
		// effects only touch http.DefaultServeMux, which is never
		// served here).
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// view returns the store snapshot a request should serve from, plus the
// write generation it belongs to. The generation is stamped inside the
// atomically-published view, so the pair is read with one pointer load
// — a concurrent write (or merge, which remaps dictionary IDs) cannot
// tear it and make a cache key describe IDs from a different view. A
// fixed store is its own immortal snapshot at generation 0.
func (s *Server) view() (*store.Store, uint64) {
	if s.mut != nil {
		st := s.mut.View()
		return st, st.Gen
	}
	return s.st, 0
}

// ServeHTTP implements http.Handler. A panicking handler answers 500
// (when the response has not started streaming yet; net/http otherwise
// aborts the connection, which a streaming client already detects as a
// truncated body) and is counted, instead of tearing down the
// connection with no record — one poisoned query must not look like a
// server crash from the outside.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.failed.Add(1)
			httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

const ndjsonType = "application/x-ndjson"

// errBusy is returned when the worker pool stays saturated past the
// request's deadline.
var errBusy = errors.New("server busy: no worker available before the deadline")

// errRateLimited answers clients over their per-client rate limit.
var errRateLimited = errors.New("rate limit exceeded for this client")

// errBreakerOpen answers writes while the write-path circuit breaker is
// open after repeated internal write failures.
var errBreakerOpen = errors.New("write path unavailable: repeated internal write failures (circuit breaker open)")

// rejectBusy answers a pool-saturation rejection: 503 with a short
// jittered Retry-After — capacity frees on the order of a query
// duration, so an immediate retry would just queue again.
func (s *Server) rejectBusy(w http.ResponseWriter) {
	s.rejectedBusy.Add(1)
	setRetryAfter(w, 1)
	httpError(w, http.StatusServiceUnavailable, errBusy)
}

// acquire claims a worker slot, waiting on ctx when the pool is full.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return errBusy
	}
}

func (s *Server) release() { <-s.sem }

// errorDoc is the unified error body every 4xx/5xx carries, across the
// protocol endpoint and the legacy dialect alike:
//
//	{"error":{"code":404,"message":"…"}}
//
// One shape with an explicit Content-Type means clients branch on one
// parser instead of sniffing which handler produced the failure.
type errorDoc struct {
	Error struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// httpError answers a pre-stream failure as a JSON error document.
func httpError(w http.ResponseWriter, status int, err error) {
	var doc errorDoc
	doc.Error.Code = status
	doc.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

// parseLimit reads the limit form value; absent means unlimited (-1).
// Explicit negative limits are rejected — only absence spells
// "unlimited" — and limit=0 is valid: zero result rows, summary only.
func parseLimit(r *http.Request) (int, error) {
	return parseLimitValue(r.FormValue("limit"))
}

// parseLimitValue is the form-independent core of parseLimit, shared
// with the protocol endpoint (which must not trigger form parsing after
// reading an application/sparql-query body).
func parseLimitValue(v string) (int, error) {
	if v == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("limit %q is not an integer", v)
	}
	if n < 0 {
		return 0, fmt.Errorf("limit %d is negative; omit the parameter for unlimited", n)
	}
	return n, nil
}

// capture tees the streamed response into a bounded buffer so complete,
// small responses can enter the result cache after the stream ends.
type capture struct {
	w        io.Writer // the client side: http.ResponseWriter, possibly behind gzip
	buf      []byte
	max      int
	overflow bool
	poisoned bool // incomplete stream (error or cancellation): never cache
}

func (c *capture) Write(p []byte) (int, error) {
	if !c.overflow && !c.poisoned {
		if len(c.buf)+len(p) <= c.max {
			c.buf = append(c.buf, p...)
		} else {
			c.overflow = true
			c.buf = nil
		}
	}
	return c.w.Write(p)
}

func (c *capture) cacheable() ([]byte, bool) {
	if c.overflow || c.poisoned || c.buf == nil {
		return nil, false
	}
	return c.buf, true
}

// serveCached writes a previously captured response.
func serveCached(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", ndjsonType)
	w.Header().Set("X-Cache", "hit")
	w.Write(body)
}

// handleQuery resolves one triple selection pattern and streams matches
// as NDJSON, one {"s":…,"p":…,"o":…} object per line, terminated by a
// {"matches":n} summary line.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	st, gen := s.view()
	if !s.checkMinGen(w, r.FormValue("min-gen"), gen) {
		return
	}
	w.Header().Set(generationHeader, strconv.FormatUint(s.generationToken(gen), 10))
	pat, err := st.ParsePattern(r.FormValue("s"), r.FormValue("p"), r.FormValue("o"))
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The cache key is the normalized pattern: dictionary terms are
	// already resolved to IDs, so lexically different spellings of the
	// same pattern share an entry. The write generation prefixes the key,
	// so entries cached before a write can never be served after it even
	// if they race the explicit cache flush.
	key := fmt.Sprintf("g%d|q|%d,%d,%d|%d", gen, pat.S, pat.P, pat.O, limit)
	if body, ok := s.results.Get(key); ok {
		serveCached(w, body)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejectBusy(w)
		return
	}
	defer s.release()

	qc := core.AcquireQueryCtx()
	defer qc.Release()

	cw := &capture{w: w, max: s.cfg.CacheMaxBytes}
	w.Header().Set("Content-Type", ndjsonType)
	w.Header().Set("X-Cache", "miss")
	// The pooled NDJSON writer replaces the old per-row struct +
	// json.Encoder pipeline: rows are hand-built into a batched buffer
	// with escaped terms cached by ID, so the steady-state row path does
	// not allocate.
	nw := store.AcquireNDJSON(st, cw)
	defer nw.Release()

	it := core.SelectWithCtx(st.Index, pat, qc)
	buf := qc.Batch()
	matches, truncated := 0, false
	for limit < 0 || matches < limit {
		// Cancellation is observed here, once per batch refill. An
		// expired deadline ends the stream with an error line in place
		// of the summary.
		if ctx.Err() != nil {
			cw.poisoned = true
			s.failed.Add(1)
			nw.WriteError("deadline exceeded")
			nw.Flush()
			return
		}
		want := buf
		if limit >= 0 && limit-matches < len(buf) {
			want = buf[:limit-matches]
		}
		k := it.NextBatch(want)
		if k == 0 {
			break
		}
		for _, t := range want[:k] {
			nw.WriteTriple(t)
		}
		matches += k
	}
	if limit >= 0 && matches >= limit {
		// The stream stopped at the limit. Probe for one more match so
		// an exactly-limit-sized result is not reported as truncated;
		// anything beyond the probe stays unproduced and uncounted.
		var probe [1]core.Triple
		truncated = it.NextBatch(probe[:]) > 0
	}
	var sum [64]byte
	line := strconv.AppendInt(append(sum[:0], `{"matches":`...), int64(matches), 10)
	if truncated {
		line = append(line, `,"truncated":true`...)
	}
	nw.AppendRaw(append(line, '}', '\n'))
	nw.Flush()
	if body, ok := cw.cacheable(); ok {
		s.results.Put(key, body)
	}
}

// handleSparql executes a BGP query and streams solutions as NDJSON, one
// {var: term, …} object per line, terminated by a summary line with the
// executor statistics.
func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	s.sparqls.Add(1)
	st, gen := s.view()
	if !s.checkMinGen(w, r.FormValue("min-gen"), gen) {
		return
	}
	w.Header().Set(generationHeader, strconv.FormatUint(s.generationToken(gen), 10))
	qs := r.FormValue("q")
	if qs == "" {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	translated, err := st.TranslateQuery(qs)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q, err := sparql.Parse(translated)
	if err != nil {
		s.failed.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// q.String() renders the dictionary-resolved BGP canonically, so it
	// normalizes whitespace and spelling for both caches. The generation
	// prefix is load-bearing beyond staleness: a merge remaps dictionary
	// IDs, so the same ID text means different terms across generations.
	norm := fmt.Sprintf("g%d|%s", gen, q.String())
	key := "s|" + norm + "|" + strconv.Itoa(limit)
	if body, ok := s.results.Get(key); ok {
		serveCached(w, body)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejectBusy(w)
		return
	}
	defer s.release()

	order, planCached := s.plans.Get(norm)
	if !planCached {
		order = sparql.Plan(q)
		s.plans.Put(norm, order)
	}

	qc := core.AcquireQueryCtx()
	defer qc.Release()

	cw := &capture{w: w, max: s.cfg.CacheMaxBytes}
	w.Header().Set("Content-Type", ndjsonType)
	w.Header().Set("X-Cache", "miss")
	nw := store.AcquireNDJSON(st, cw)
	defer nw.Release()
	nw.SetVars(q.Vars)

	// Reaching the row limit cancels the execution context: the executor
	// aborts within one cancellation stride instead of computing
	// solutions nobody will see. StreamWithOrder reuses one bindings map
	// across solutions, so the emit path allocates nothing per row.
	execCtx, stop := context.WithCancel(ctx)
	defer stop()
	rows, truncated := 0, false
	stats, err := sparql.StreamWithOrder(execCtx, q, ctxStore{x: st.Index, qc: qc}, order, func(b sparql.Bindings) {
		if limit >= 0 && rows >= limit {
			if !truncated {
				truncated = true
				stop()
			}
			return
		}
		nw.WriteSolution(b)
		rows++
	})
	if err != nil && !truncated {
		cw.poisoned = true
		s.failed.Add(1)
		nw.WriteError(err.Error())
		nw.Flush()
		return
	}
	var sum [128]byte
	line := strconv.AppendInt(append(sum[:0], `{"results":`...), int64(rows), 10)
	line = strconv.AppendInt(append(line, `,"patterns":`...), int64(stats.PatternsIssued), 10)
	line = strconv.AppendInt(append(line, `,"matched":`...), int64(stats.TriplesMatched), 10)
	if truncated {
		line = append(line, `,"truncated":true`...)
	}
	line = append(line, `,"plan_cached":`...)
	line = strconv.AppendBool(line, planCached)
	nw.AppendRaw(append(line, '}', '\n'))
	nw.Flush()
	if body, ok := cw.cacheable(); ok {
		s.results.Put(key, body)
	}
}

// handleInsert accepts POST /insert?s=&p=&o= with bound N-Triples terms
// (or raw integer IDs on integer-only stores). Terms never seen before
// are admitted via the overlay dictionaries. The response is the store's
// WriteResult as JSON.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleWrite(w, r, true)
}

// handleDelete accepts POST /delete?s=&p=&o=. Deleting an absent triple
// (including one with unknown terms) reports changed=false.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleWrite(w, r, false)
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request, insert bool) {
	if f := s.cfg.Replica; f != nil {
		// A replica's store belongs to the replication stream; a local
		// write would fork it from the leader's WAL. Point the client at
		// the writer.
		s.failed.Add(1)
		w.Header().Set(leaderHeader, f.Leader())
		httpError(w, http.StatusForbidden,
			fmt.Errorf("this server is a read replica; write to the leader at %s", f.Leader()))
		return
	}
	if s.mut == nil {
		s.failed.Add(1)
		httpError(w, http.StatusForbidden, errors.New("store is read-only (serve a mutable store to enable writes)"))
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.failed.Add(1)
		httpError(w, http.StatusMethodNotAllowed, errors.New("writes require POST"))
		return
	}
	// The circuit breaker gates admission: while the write path is known
	// broken (consecutive WAL or merge failures), fail fast before
	// spending a worker slot on a write that will hit the same fault.
	if s.brk != nil {
		if ok, retry := s.brk.allow(s.now()); !ok {
			s.rejectedBrk.Add(1)
			setRetryAfter(w, retry)
			httpError(w, http.StatusServiceUnavailable, errBreakerOpen)
			return
		}
	}
	// Writes go through the same bounded admission as reads: at most
	// Workers requests contend for the store's writer mutex, and later
	// arrivals 503 when their deadline passes first — a threshold merge
	// holding the mutex for a rebuild must not pile up goroutines.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		if s.brk != nil {
			// No write happened; a granted half-open probe must not stay
			// reserved (neutral outcome releases it).
			s.brk.result(false, true, s.now())
		}
		s.rejectBusy(w)
		return
	}
	defer s.release()
	var res store.WriteResult
	var err error
	if insert {
		s.inserts.Add(1)
		res, err = s.mut.Insert(r.FormValue("s"), r.FormValue("p"), r.FormValue("o"))
	} else {
		s.deletes.Add(1)
		res, err = s.mut.Delete(r.FormValue("s"), r.FormValue("p"), r.FormValue("o"))
	}
	if s.brk != nil {
		// Bad terms are the caller's fault and say nothing about the
		// store's health; only internal failures count against it.
		s.brk.result(err != nil, errors.Is(err, store.ErrTerm), s.now())
	}
	if err != nil {
		s.failed.Add(1)
		// Bad terms are the caller's fault; WAL or merge failures are
		// server-side and must not masquerade as 400s (clients would
		// drop instead of retry).
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrTerm) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	if res.Changed {
		// The generation prefix already fences stale entries off the
		// read path; flushing reclaims their memory immediately instead
		// of waiting for LRU churn.
		s.results.Clear()
		s.plans.Clear()
	}
	// The generation doubles as the read-your-writes token: present it
	// back as min-gen (to this server or a replica) to never read a view
	// older than this write.
	w.Header().Set(generationHeader, strconv.FormatUint(res.Generation, 10))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// ctxStore adapts the shared index to the executor's Store interface,
// routing every Select through the request's QueryCtx. SelectVarSorted
// forwards to the index so merge-intersection joins keep working.
type ctxStore struct {
	x  core.Index
	qc *core.QueryCtx
}

func (s ctxStore) Select(p core.Pattern) *core.Iterator {
	return core.SelectWithCtx(s.x, p, s.qc)
}

func (s ctxStore) NumTriples() int { return s.x.NumTriples() }

func (s ctxStore) SelectVarSorted(p core.Pattern) (*core.VarIter, bool) {
	if vs, ok := s.x.(core.VarSelecter); ok {
		return vs.SelectVarSorted(p)
	}
	return nil, false
}

// Stats is the /stats document. On a mutable store, Triples and
// BitsPerTriple describe the current snapshot (static core plus pending
// update log).
type Stats struct {
	Layout        string  `json:"layout"`
	Triples       int     `json:"triples"`
	BitsPerTriple float64 `json:"bits_per_triple"`
	Shards        int     `json:"shards"`
	Dictionary    bool    `json:"dictionary"`
	Mutable       bool    `json:"mutable"`
	Generation    uint64  `json:"generation"`
	LogSize       int     `json:"log_size"`
	Merges        uint64  `json:"merges"`
	Workers       int     `json:"workers"`
	InFlight      int     `json:"in_flight"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queries       uint64  `json:"queries"`
	SparqlQueries uint64  `json:"sparql_queries"`
	// ProtocolQueries counts requests on the standards /sparql endpoint;
	// SparqlQueries counts the deprecated NDJSON dialect.
	ProtocolQueries uint64 `json:"protocol_queries"`
	Inserts         uint64 `json:"inserts"`
	Deletes         uint64 `json:"deletes"`
	// Rejected totals the rejection causes broken out below.
	Rejected            uint64 `json:"rejected"`
	RejectedBusy        uint64 `json:"rejected_busy"`
	RejectedRateLimited uint64 `json:"rejected_rate_limited"`
	RejectedBreakerOpen uint64 `json:"rejected_breaker_open"`
	// RejectedStale counts min-gen reads refused because the view had
	// not caught up to the requested generation.
	RejectedStale uint64 `json:"rejected_stale"`
	Panics        uint64 `json:"panics"`
	Failed        uint64 `json:"failed"`
	BreakerOpen   bool   `json:"breaker_open"`
	CacheEntries  int    `json:"cache_entries"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	// CacheFlushes counts whole-cache invalidations — one per changing
	// write (generation bump) — for the result cache; PlanFlushes for
	// the plan cache.
	CacheFlushes uint64 `json:"cache_flushes"`
	PlanEntries  int    `json:"plan_entries"`
	PlanHits     uint64 `json:"plan_cache_hits"`
	PlanMisses   uint64 `json:"plan_cache_misses"`
	PlanFlushes  uint64 `json:"plan_cache_flushes"`
	// SlowQueries and SlowSuppressed count slow-query log entries
	// written and entries the sampler dropped; both stay 0 with the log
	// disabled. WALBytes is the write-ahead log's current size.
	SlowQueries    uint64 `json:"slow_queries"`
	SlowSuppressed uint64 `json:"slow_queries_suppressed"`
	WALBytes       int64  `json:"wal_bytes"`
	// RequestP50Ms/P95/P99 are latency percentiles of the protocol
	// endpoint, from the same histogram /metrics exposes.
	RequestP50Ms float64 `json:"request_p50_ms"`
	RequestP95Ms float64 `json:"request_p95_ms"`
	RequestP99Ms float64 `json:"request_p99_ms"`
	// FormatVersion and Verified describe the container the serving view
	// came from: version 2 carries per-section checksums verified at
	// open; legacy version-1 files load unverified. QuarantinedShards
	// lists shard sections excluded by a degraded open — non-empty means
	// the store is serving partial data.
	FormatVersion     int   `json:"format_version"`
	Verified          bool  `json:"verified"`
	QuarantinedShards []int `json:"quarantined_shards,omitempty"`
	Degraded          bool  `json:"degraded"`
	// Replication carries the follower-side lag/position counters when
	// this server is a read replica; ReplicationLeader the leader-side
	// shipping counters when it streams its WAL to followers.
	Replication       *repl.FollowerStats `json:"replication,omitempty"`
	ReplicationLeader *repl.LeaderStats   `json:"replication_leader,omitempty"`
}

// Snapshot returns the current statistics.
func (s *Server) Snapshot() Stats {
	hits, misses := s.results.Counters()
	planHits, planMisses := s.plans.Counters()
	lat := s.reqHist.Snapshot()
	st, gen := s.view()
	stats := Stats{
		Layout:              st.Index.Layout().String(),
		Triples:             st.Index.NumTriples(),
		BitsPerTriple:       core.BitsPerTriple(st.Index),
		Shards:              st.Shards(),
		Dictionary:          st.Dicts != nil,
		Generation:          gen,
		Workers:             s.cfg.Workers,
		InFlight:            len(s.sem),
		UptimeSeconds:       time.Since(s.start).Seconds(),
		Queries:             s.queries.Load(),
		SparqlQueries:       s.sparqls.Load(),
		ProtocolQueries:     s.protocols.Load(),
		Inserts:             s.inserts.Load(),
		Deletes:             s.deletes.Load(),
		RejectedBusy:        s.rejectedBusy.Load(),
		RejectedRateLimited: s.rejectedRate.Load(),
		RejectedBreakerOpen: s.rejectedBrk.Load(),
		RejectedStale:       s.rejectedStale.Load(),
		Panics:              s.panics.Load(),
		Failed:              s.failed.Load(),
		CacheEntries:        s.results.Len(),
		CacheHits:           hits,
		CacheMisses:         misses,
		CacheFlushes:        s.results.Flushes(),
		PlanEntries:         s.plans.Len(),
		PlanHits:            planHits,
		PlanMisses:          planMisses,
		PlanFlushes:         s.plans.Flushes(),
		SlowQueries:         s.slow.Logged(),
		SlowSuppressed:      s.slow.Suppressed(),
		RequestP50Ms:        float64(lat.Quantile(0.50)) / 1e6,
		RequestP95Ms:        float64(lat.Quantile(0.95)) / 1e6,
		RequestP99Ms:        float64(lat.Quantile(0.99)) / 1e6,
		FormatVersion:       st.Integrity.Version,
		Verified:            st.Integrity.Verified,
		QuarantinedShards:   st.Integrity.Quarantined,
		Degraded:            len(st.Integrity.Quarantined) > 0,
	}
	stats.Rejected = stats.RejectedBusy + stats.RejectedRateLimited +
		stats.RejectedBreakerOpen + stats.RejectedStale
	if s.brk != nil {
		stats.BreakerOpen = s.brk.open(s.now())
	}
	if f := s.cfg.Replica; f != nil {
		fs := f.Stats()
		stats.Replication = &fs
	}
	if l := s.cfg.ReplLeader; l != nil {
		ls := l.Stats()
		stats.ReplicationLeader = &ls
	}
	if s.mut != nil {
		stats.Mutable = true
		stats.Merges = s.mut.Merges()
		stats.WALBytes = s.mut.WALBytes()
		if dyn, ok := st.Index.(*core.DynamicSnapshot); ok {
			stats.LogSize = dyn.LogSize()
		}
	}
	return stats
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

// handleHealthz is the pure liveness probe: the process is up and
// answering, nothing more. Conditions a restart would not fix — a
// degraded store, a replica still catching up — belong to /readyz
// (replica.go), where a load balancer drains traffic instead of a
// supervisor killing the process.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
