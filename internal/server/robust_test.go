package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"rdfindexes/internal/store"
)

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/query", nil)
	r.RemoteAddr = "203.0.113.9:4711"
	if got := clientKey(r); got != "203.0.113.9" {
		t.Fatalf("remote addr key = %q", got)
	}
	r.Header.Set("X-Forwarded-For", " 198.51.100.7 , 203.0.113.9")
	if got := clientKey(r); got != "198.51.100.7" {
		t.Fatalf("xff key = %q", got)
	}
}

func TestRateLimiterBucket(t *testing.T) {
	rl := newRateLimiter(1, 2) // 1 req/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("a", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.allow("a", now)
	if ok || retry < 1 {
		t.Fatalf("over-burst allowed (ok=%v retry=%d)", ok, retry)
	}
	// A different client has its own bucket.
	if ok, _ := rl.allow("b", now); !ok {
		t.Fatal("second client throttled by the first")
	}
	// Tokens accrue with time.
	if ok, _ := rl.allow("a", now.Add(1500*time.Millisecond)); !ok {
		t.Fatal("refilled token denied")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	rl := newRateLimiter(100, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < maxClients; i++ {
		rl.allow("client-"+strconv.Itoa(i), now)
	}
	// All existing buckets have fully refilled by now+1s, so the next
	// insert evicts them instead of growing past the bound.
	rl.allow("straw", now.Add(time.Second))
	if n := len(rl.buckets); n > maxClients {
		t.Fatalf("limiter table grew to %d entries", n)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 10*time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("breaker open before threshold (failure %d)", i)
		}
		b.result(true, false, now)
	}
	ok, retry := b.allow(now)
	if ok || retry < 1 {
		t.Fatalf("breaker closed after threshold failures (ok=%v retry=%d)", ok, retry)
	}
	if !b.open(now) {
		t.Fatal("open() disagrees with allow()")
	}
	// Client-fault (neutral) outcomes neither trip nor reset: a new
	// breaker fed bad-term errors stays closed.
	nb := newBreaker(2, time.Second)
	for i := 0; i < 5; i++ {
		nb.allow(now)
		nb.result(true, true, now)
	}
	if nb.open(now) {
		t.Fatal("client faults opened the breaker")
	}
	// After the cooldown exactly one probe goes through; a concurrent
	// request is still rejected.
	later := now.Add(11 * time.Second)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("half-open probe denied")
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("second request admitted during the probe")
	}
	// Probe success closes the breaker for everyone.
	b.result(false, false, later)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("breaker still open after a successful probe")
	}
	// And a failed probe re-opens it for a full cooldown.
	for i := 0; i < 3; i++ {
		b.result(true, false, later)
	}
	probeAt := later.Add(11 * time.Second)
	if ok, _ := b.allow(probeAt); !ok {
		t.Fatal("second probe denied")
	}
	b.result(true, false, probeAt)
	if ok, _ := b.allow(probeAt.Add(5 * time.Second)); ok {
		t.Fatal("breaker closed mid-cooldown after a failed probe")
	}
}

// TestRateLimitHTTP drives the limiter through the HTTP layer: the
// burst passes, the next request 429s with Retry-After, and /stats
// counts the rejection under its cause.
func TestRateLimitHTTP(t *testing.T) {
	st := testStore(t, 6, 2)
	srv := New(st, Options{RateLimit: 1, RateBurst: 2})
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// A different client is unaffected.
	other := httptest.NewRequest(http.MethodGet, "/query?limit=1", nil)
	other.RemoteAddr = "203.0.113.77:999"
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, other)
	if rec.Code != http.StatusOK {
		t.Fatalf("second client throttled: %d", rec.Code)
	}
	// /stats itself is never rate-limited and reports the cause split.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats rate-limited: %d", rec.Code)
	}
	var stats Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RejectedRateLimited != 1 || stats.Rejected != 1 {
		t.Fatalf("rejection counters %+v", stats)
	}
}

// TestBreakerHTTP opens the breaker (by feeding it internal-failure
// outcomes) and checks the write path fails fast with 503 + Retry-After
// while reads keep flowing, with the rejection counted by cause.
func TestBreakerHTTP(t *testing.T) {
	dir := t.TempDir()
	path := buildMutableStore(t, dir)
	m, err := store.OpenMutable(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewMutable(m, Options{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	now := time.Now()
	for i := 0; i < 2; i++ {
		srv.brk.result(true, false, now)
	}
	form := url.Values{"s": {"<http://ex/new>"}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/p1>"}}
	req := httptest.NewRequest(http.MethodPost, "/insert", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write through open breaker: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
	// Reads are not gated by the write breaker.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("read blocked by write breaker: %d", rec.Code)
	}
	var stats Stats
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RejectedBreakerOpen != 1 || !stats.BreakerOpen {
		t.Fatalf("breaker stats %+v", stats)
	}
	// A successful write after recovery closes it: simulate by letting
	// the probe through after cooldown.
	srv.now = func() time.Time { return now.Add(2 * time.Minute) }
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/insert", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("half-open probe write: %d %s", rec.Code, rec.Body)
	}
	if srv.brk.open(srv.now()) {
		t.Fatal("breaker still open after successful probe")
	}
}

// TestPanicRecovery pins the middleware: a panicking handler answers
// 500 with the panic counted, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	st := testStore(t, 4, 1)
	srv := New(st, Options{})
	srv.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic answered %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("panic body %q", rec.Body)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panics counter = %d", srv.panics.Load())
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("server dead after a recovered panic: %d", rec.Code)
	}
}

// TestBusyRetryAfter saturates the one-worker pool and checks the busy
// 503 carries Retry-After and is counted under its own cause.
func TestBusyRetryAfter(t *testing.T) {
	st := testStore(t, 4, 1)
	srv := New(st, Options{Workers: 1, Timeout: 50 * time.Millisecond, CacheEntries: -1})
	srv.sem <- struct{}{} // steal the only worker slot
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
	<-srv.sem
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool answered %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("busy 503 without Retry-After")
	}
	var stats Stats
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RejectedBusy != 1 {
		t.Fatalf("busy rejection not counted: %+v", stats)
	}
}

// TestDegradedSurfacing serves a store flagged as degraded and checks
// /stats and /readyz both say so while /healthz stays a pure liveness
// 200 and queries still answer.
func TestDegradedSurfacing(t *testing.T) {
	st := testStore(t, 4, 1)
	st.Integrity = store.Integrity{Version: 2, Verified: true, Quarantined: []int{1}}
	srv := New(st, Options{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("healthz must stay pure liveness: %d %q", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("readyz: %d %q", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded readyz without Retry-After")
	}
	var stats Stats
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || len(stats.QuarantinedShards) != 1 || stats.QuarantinedShards[0] != 1 {
		t.Fatalf("degraded stats %+v", stats)
	}
	if stats.FormatVersion != 2 || !stats.Verified {
		t.Fatalf("integrity stats %+v", stats)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?limit=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded store not serving: %d", rec.Code)
	}
}

// buildMutableStore writes a small dictionary store to disk for
// mutable-serving tests.
func buildMutableStore(t *testing.T, dir string) string {
	t.Helper()
	st := testStore(t, 6, 2)
	path := dir + "/store.idx"
	if err := store.Write(path, st); err != nil {
		t.Fatal(err)
	}
	return path
}
