package server

import (
	"compress/gzip"
	"encoding/json"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"rdfindexes/internal/server/results"
)

const knowsQuery = "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"

// do issues a protocol request with full control over method, headers
// and body, returning the response and its raw body bytes.
func do(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func protocolGet(t *testing.T, ts *httptest.Server, query, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(query), nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return do(t, req)
}

// jsonBindings decodes a SPARQL JSON results body and returns its rows.
func jsonBindings(t *testing.T, body []byte) (vars []string, rows []map[string]map[string]string) {
	t.Helper()
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad SPARQL JSON %s: %v", body, err)
	}
	return doc.Head.Vars, doc.Results.Bindings
}

// errorShape decodes the unified error document and checks its code
// matches the HTTP status.
func errorShape(t *testing.T, resp *http.Response, body []byte) string {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("error Content-Type = %q", ct)
	}
	var doc struct {
		Error struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad error body %s: %v", body, err)
	}
	if doc.Error.Code != resp.StatusCode || doc.Error.Message == "" {
		t.Fatalf("error doc %+v vs status %d", doc, resp.StatusCode)
	}
	return doc.Error.Message
}

// TestProtocolFormats runs one BGP through all four negotiated formats
// and checks each body parses as its advertised media type.
func TestProtocolFormats(t *testing.T) {
	st := testStore(t, 40, 3)
	ts := httptest.NewServer(New(st, Options{Workers: 4}))
	defer ts.Close()

	for _, f := range results.Formats() {
		ct := f.ContentType()
		resp, body := protocolGet(t, ts, knowsQuery, strings.Split(ct, ";")[0])
		if resp.StatusCode != 200 {
			t.Fatalf("%v: status %d body %s", f, resp.StatusCode, body)
		}
		if got := resp.Header.Get("Content-Type"); got != ct {
			t.Fatalf("%v: Content-Type %q, want %q", f, got, ct)
		}
		switch f {
		case results.JSON:
			vars, rows := jsonBindings(t, body)
			if len(vars) != 2 || len(rows) != 40 {
				t.Fatalf("json: vars %v rows %d", vars, len(rows))
			}
			if b := rows[0]["x"]; b["type"] != "uri" || !strings.HasPrefix(b["value"], "http://ex/p") {
				t.Fatalf("json binding %v", rows[0])
			}
		case results.XML:
			var doc struct {
				XMLName xml.Name `xml:"sparql"`
				Results []struct {
					Bindings []struct {
						URI string `xml:"uri"`
					} `xml:"binding"`
				} `xml:"results>result"`
			}
			if err := xml.Unmarshal(body, &doc); err != nil {
				t.Fatalf("xml: %v", err)
			}
			if len(doc.Results) != 40 || len(doc.Results[0].Bindings) != 2 {
				t.Fatalf("xml rows %d", len(doc.Results))
			}
		case results.CSV:
			lines := strings.Split(strings.TrimSpace(string(body)), "\r\n")
			if len(lines) != 41 || lines[0] != "x,y" {
				t.Fatalf("csv: %d lines, header %q", len(lines), lines[0])
			}
		case results.TSV:
			lines := strings.Split(strings.TrimSpace(string(body)), "\n")
			if len(lines) != 41 || lines[0] != "?x\t?y" {
				t.Fatalf("tsv: %d lines, header %q", len(lines), lines[0])
			}
			if !strings.HasPrefix(lines[1], "<http://ex/p") {
				t.Fatalf("tsv row %q", lines[1])
			}
		}
	}
}

// TestProtocolRequestForms covers the three request shapes the protocol
// defines plus the rejections around them, all answered in the unified
// error document.
func TestProtocolRequestForms(t *testing.T) {
	st := testStore(t, 10, 2)
	ts := httptest.NewServer(New(st, Options{Workers: 2}))
	defer ts.Close()

	post := func(ct, body string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/sparql", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		return do(t, req)
	}

	t.Run("post direct", func(t *testing.T) {
		resp, body := post("application/sparql-query; charset=utf-8", knowsQuery)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d body %s", resp.StatusCode, body)
		}
		if _, rows := jsonBindings(t, body); len(rows) != 10 {
			t.Fatalf("rows %d", len(rows))
		}
	})
	t.Run("post form", func(t *testing.T) {
		resp, body := post("application/x-www-form-urlencoded",
			url.Values{"query": {knowsQuery}}.Encode())
		if resp.StatusCode != 200 {
			t.Fatalf("status %d body %s", resp.StatusCode, body)
		}
		if _, rows := jsonBindings(t, body); len(rows) != 10 {
			t.Fatalf("rows %d", len(rows))
		}
	})
	t.Run("unsupported media type", func(t *testing.T) {
		resp, body := post("text/turtle", knowsQuery)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d, want 415", resp.StatusCode)
		}
		errorShape(t, resp, body)
	})
	t.Run("method", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/sparql", nil)
		resp, body := do(t, req)
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD, POST" {
			t.Fatalf("status %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
		}
		errorShape(t, resp, body)
	})
	t.Run("missing query param", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql", nil)
		resp, body := do(t, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		errorShape(t, resp, body)
	})
	t.Run("parse error", func(t *testing.T) {
		resp, body := protocolGet(t, ts, "SELECT WHERE", "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		errorShape(t, resp, body)
	})
	t.Run("bad limit", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet,
			ts.URL+"/sparql?limit=-3&query="+url.QueryEscape(knowsQuery), nil)
		resp, body := do(t, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		errorShape(t, resp, body)
	})
	t.Run("limit", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet,
			ts.URL+"/sparql?limit=3&query="+url.QueryEscape(knowsQuery), nil)
		resp, body := do(t, req)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if _, rows := jsonBindings(t, body); len(rows) != 3 {
			t.Fatalf("rows %d, want 3", len(rows))
		}
	})
}

// TestProtocolNegotiationHTTP exercises negotiation end to end: q-value
// ordering, wildcard defaulting, and the 406 for unacceptable types.
func TestProtocolNegotiationHTTP(t *testing.T) {
	st := testStore(t, 10, 2)
	ts := httptest.NewServer(New(st, Options{Workers: 2}))
	defer ts.Close()

	cases := []struct {
		accept string
		wantCT string
	}{
		{"", "application/sparql-results+json"},
		{"*/*", "application/sparql-results+json"},
		{"application/sparql-results+xml;q=0.5, text/csv", "text/csv; charset=utf-8"},
		{"text/tab-separated-values;q=0.9, text/csv;q=0.2", "text/tab-separated-values; charset=utf-8"},
	}
	for _, c := range cases {
		resp, _ := protocolGet(t, ts, knowsQuery, c.accept)
		if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != c.wantCT {
			t.Fatalf("Accept %q: status %d Content-Type %q, want %q",
				c.accept, resp.StatusCode, resp.Header.Get("Content-Type"), c.wantCT)
		}
	}

	resp, body := protocolGet(t, ts, knowsQuery, "text/html, image/png;q=0.8")
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("406 case: status %d", resp.StatusCode)
	}
	if msg := errorShape(t, resp, body); !strings.Contains(msg, "text/csv") {
		t.Fatalf("406 message %q does not list supported types", msg)
	}
}

// TestProtocolGzip checks the gzip × chunked-streaming interaction: a
// compressed response still streams (no Content-Length), decompresses
// to exactly the identity body, and the result cache — which stores the
// uncompressed serialization — serves both encodings correctly.
func TestProtocolGzip(t *testing.T) {
	// Enough rows that the serialized response overflows both the
	// serializer's 8 KiB flush batches and net/http's small-response
	// buffer, forcing a real chunked stream even after compression.
	st := testStore(t, 3000, 0)
	ts := httptest.NewServer(New(st, Options{Workers: 2}))
	defer ts.Close()

	gzGet := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", "application/sparql-results+json")
		// An explicit Accept-Encoding disables the transport's
		// transparent decompression, exposing the raw wire bytes.
		req.Header.Set("Accept-Encoding", "gzip")
		return do(t, req)
	}

	resp, wire := gzGet()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("status %d encoding %q", resp.StatusCode, resp.Header.Get("Content-Encoding"))
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("compressed stream has Content-Length %d; want chunked", resp.ContentLength)
	}
	zr, err := gzip.NewReader(strings.NewReader(string(wire)))
	if err != nil {
		t.Fatal(err)
	}
	plainFromGz, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	// Identity request: decompressed body and plain body are identical,
	// and the plain client is served from the cache entry the gzip
	// request populated.
	respPlain, plain := protocolGet(t, ts, knowsQuery, "application/sparql-results+json")
	if respPlain.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity response has Content-Encoding %q", respPlain.Header.Get("Content-Encoding"))
	}
	if respPlain.Header.Get("X-Cache") != "hit" {
		t.Fatalf("plain request after gzip: X-Cache %q, want hit", respPlain.Header.Get("X-Cache"))
	}
	if string(plain) != string(plainFromGz) {
		t.Fatalf("gzip and identity bodies differ:\n%s\nvs\n%s", plainFromGz, plain)
	}

	// A second gzip request hits the cache and re-compresses.
	resp2, wire2 := gzGet()
	if resp2.Header.Get("X-Cache") != "hit" || resp2.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("cached gzip: X-Cache %q encoding %q", resp2.Header.Get("X-Cache"), resp2.Header.Get("Content-Encoding"))
	}
	zr2, err := gzip.NewReader(strings.NewReader(string(wire2)))
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := io.ReadAll(zr2); string(b) != string(plain) {
		t.Fatalf("cached gzip body differs")
	}
}

// TestProtocolETag checks conditional revalidation across the RCU
// generations: hits while the store is unchanged, misses after an
// insert bumps the generation and again after a merge remaps it.
func TestProtocolETag(t *testing.T) {
	dir := t.TempDir()
	m := mutableStore(t, dir, 10, 2, 0)
	ts := httptest.NewServer(NewMutable(m, Options{Workers: 2}))
	defer ts.Close()

	conditional := func(etag string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
		if err != nil {
			t.Fatal(err)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		return do(t, req)
	}

	resp, _ := conditional("")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || etag == "" {
		t.Fatalf("initial: status %d etag %q", resp.StatusCode, etag)
	}
	if vary := resp.Header.Get("Vary"); !strings.Contains(vary, "Accept") {
		t.Fatalf("Vary = %q", vary)
	}

	// Unchanged store: the validator holds, including as a weak match.
	if resp, _ := conditional(etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", resp.StatusCode)
	}
	if resp, _ := conditional("W/" + etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak revalidation: status %d, want 304", resp.StatusCode)
	}
	// A different format under the same generation is a different
	// representation, so a JSON validator must not revalidate CSV.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(knowsQuery), nil)
	req.Header.Set("Accept", "text/csv")
	req.Header.Set("If-None-Match", etag)
	if resp, _ := do(t, req); resp.StatusCode != 200 {
		t.Fatalf("cross-format revalidation: status %d, want 200", resp.StatusCode)
	}

	// An insert bumps the generation: the old validator misses and the
	// fresh response carries a new one.
	if resp, body := postForm(t, ts, "/v1/insert", url.Values{
		"s": {"<http://ex/p0>"}, "p": {"<http://ex/knows>"}, "o": {"<http://ex/p5>"},
	}); resp.StatusCode != 200 {
		t.Fatalf("insert: status %d body %s", resp.StatusCode, body)
	}
	resp, _ = conditional(etag)
	etag2 := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || etag2 == etag || etag2 == "" {
		t.Fatalf("post-insert: status %d etag %q (was %q)", resp.StatusCode, etag2, etag)
	}
	if resp, _ := conditional(etag2); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("post-insert revalidation: status %d, want 304", resp.StatusCode)
	}

	// A merge rebuilds the store and remaps dictionary IDs under yet
	// another generation; the pre-merge validator must miss.
	if err := m.Merge(); err != nil {
		t.Fatal(err)
	}
	resp, body := conditional(etag2)
	if resp.StatusCode != 200 {
		t.Fatalf("post-merge: status %d", resp.StatusCode)
	}
	if etag3 := resp.Header.Get("ETag"); etag3 == etag2 || etag3 == "" {
		t.Fatalf("post-merge etag %q unchanged", etag3)
	}
	if _, rows := jsonBindings(t, body); len(rows) != 11 {
		t.Fatalf("post-merge rows %d, want 11", len(rows))
	}
}

// TestDeprecatedDialectHeaders pins the migration headers on the legacy
// NDJSON dialect — under /v1/ and at the pre-versioning root aliases —
// and their absence from the successor endpoint.
func TestDeprecatedDialectHeaders(t *testing.T) {
	st := testStore(t, 10, 2)
	ts := httptest.NewServer(New(st, Options{Workers: 2}))
	defer ts.Close()

	for _, path := range []string{
		"/v1/query?p=" + url.QueryEscape("<http://ex/knows>"),
		"/v1/sparql?q=" + url.QueryEscape(knowsQuery),
		"/query?p=" + url.QueryEscape("<http://ex/knows>"),
	} {
		resp, _ := get(t, ts, path)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d == "" {
			t.Errorf("%s: no Deprecation header", path)
		}
		if s := resp.Header.Get("Sunset"); s == "" {
			t.Errorf("%s: no Sunset header", path)
		}
		if l := resp.Header.Get("Link"); !strings.Contains(l, `rel="successor-version"`) {
			t.Errorf("%s: Link %q lacks successor-version", path, l)
		}
	}

	resp, _ := protocolGet(t, ts, knowsQuery, "")
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/sparql carries a Deprecation header")
	}
}

// TestProtocolStats checks the protocol counter is split from the
// legacy dialect counter.
func TestProtocolStats(t *testing.T) {
	st := testStore(t, 10, 2)
	srv := New(st, Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	protocolGet(t, ts, knowsQuery, "")
	get(t, ts, "/v1/sparql?q="+url.QueryEscape(knowsQuery))
	snap := srv.Snapshot()
	if snap.ProtocolQueries != 1 || snap.SparqlQueries != 1 {
		t.Fatalf("protocol %d sparql %d, want 1 and 1", snap.ProtocolQueries, snap.SparqlQueries)
	}
}

// TestOptionsValidate covers the new Options surface: rejected
// negatives and the accepted meaningful ones.
func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options invalid: %v", err)
	}
	// Negative CacheEntries (cache off) and BreakerThreshold (breaker
	// off) carry meaning and validate.
	if err := (Options{CacheEntries: -1, BreakerThreshold: -1}).Validate(); err != nil {
		t.Fatalf("meaningful negatives rejected: %v", err)
	}
	for _, bad := range []Options{
		{Workers: -1},
		{Timeout: -time.Second},
		{CacheMaxBytes: -1},
		{PlanEntries: -1},
		{RateLimit: -0.5},
		{RateBurst: -2},
		{BreakerCooldown: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}
