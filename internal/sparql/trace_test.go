package sparql

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/obs"
)

// TestStreamTraced checks the per-step cardinality recording against
// the executor's own aggregate stats on both the nested-loop and the
// merge-intersection paths.
func TestStreamTraced(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	d := core.NewDataset(randomTriples(rng, 600))
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	var seed core.Triple
	for _, c := range d.Triples {
		seed = c
		break
	}
	for _, qs := range []string{
		// Chain: pure nested-loop steps.
		fmt.Sprintf("SELECT ?x ?y WHERE { ?x <%d> ?y . ?y <%d> ?z . }", seed.P, (seed.P+1)%5),
		// Star: a gallop group.
		fmt.Sprintf("SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . }",
			seed.P, seed.O, (seed.P+1)%5, seed.O),
	} {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		order := Plan(q)
		tr := obs.AcquireTrace()
		tr.EnableSteps(len(order))
		stats, err := StreamTraced(nil, q, x, order, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Untraced execution is bit-identical.
		plain, err := StreamWithOrder(nil, q, x, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plain != stats {
			t.Errorf("%q: traced stats %+v != untraced %+v", qs, stats, plain)
		}
		steps := tr.Steps()
		if len(steps) != len(order) {
			t.Fatalf("%q: %d steps recorded, want %d", qs, len(steps), len(order))
		}
		var scanned, matched uint64
		patternsSeen := map[int]bool{}
		for i, st := range steps {
			scanned += st.Scanned
			matched += st.Matched
			if st.Matched > st.Scanned {
				t.Errorf("%q step %d: matched %d > scanned %d", qs, i, st.Matched, st.Scanned)
			}
			if st.Calls > 0 {
				patternsSeen[st.Pattern] = true
			}
		}
		if scanned == 0 {
			t.Errorf("%q: no candidates recorded", qs)
		}
		// On the nested path Scanned equals TriplesMatched exactly; the
		// gallop path records stream advances instead, which can only be
		// fewer than or equal to the candidates a nested scan would touch
		// but must still cover every agreed match.
		if matched < uint64(stats.Results) {
			t.Errorf("%q: %d matched below %d results", qs, matched, stats.Results)
		}
		if len(patternsSeen) == 0 || len(patternsSeen) > len(q.Patterns) {
			t.Errorf("%q: pattern indices %v out of range", qs, patternsSeen)
		}
		tr.Release()
	}
}

// TestStreamTracedGallopFlag checks that a star join resolved by
// merge-intersection marks its steps Gallop with the scanned/matched
// gap visible, while a chain join does not.
func TestStreamTracedGallopFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	d := core.NewDataset(randomTriples(rng, 600))
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Store(x).(core.VarSelecter); !ok {
		t.Fatal("Layout2Tp lost VarSelecter")
	}
	var seed core.Triple
	for _, c := range d.Triples {
		seed = c
		break
	}
	star, err := Parse(fmt.Sprintf("SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . }",
		seed.P, seed.O, (seed.P+1)%5, seed.O))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.AcquireTrace()
	defer tr.Release()
	order := Plan(star)
	tr.EnableSteps(len(order))
	if _, err := StreamTraced(nil, star, x, order, tr, nil); err != nil {
		t.Fatal(err)
	}
	for i, st := range tr.Steps() {
		if !st.Gallop {
			t.Errorf("star step %d not marked gallop: %+v", i, st)
		}
	}

	chain, err := Parse(fmt.Sprintf("SELECT ?x ?z WHERE { ?x <%d> ?y . ?y <%d> ?z . }",
		seed.P, (seed.P+1)%5))
	if err != nil {
		t.Fatal(err)
	}
	tr2 := obs.AcquireTrace()
	defer tr2.Release()
	order2 := Plan(chain)
	tr2.EnableSteps(len(order2))
	if _, err := StreamTraced(nil, chain, x, order2, tr2, nil); err != nil {
		t.Fatal(err)
	}
	for i, st := range tr2.Steps() {
		if st.Gallop {
			t.Errorf("chain step %d marked gallop: %+v", i, st)
		}
	}
}
