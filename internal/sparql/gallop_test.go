package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rdfindexes/internal/core"
)

// TestGallopedStarJoins cross-checks the merge-intersection path against
// brute force on star-shaped BGPs, for every layout that implements
// core.VarSelecter and for the plain-Store fallback.
func TestGallopedStarJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ts := randomTriples(rng, 600)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	stores := map[string]Store{"slice": sliceStore(d.Triples)}
	for _, l := range []core.Layout{core.Layout3T, core.LayoutCC, core.Layout2Tp, core.Layout2To} {
		x, err := core.Build(d, l)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := x.(core.VarSelecter); !ok {
			t.Fatalf("%s: expected VarSelecter", l)
		}
		stores[l.String()] = x
	}

	var queries []string
	// Subject stars over every predicate pair/triple with concrete objects.
	bySubject := map[core.ID][]core.Triple{}
	for _, tr := range d.Triples {
		bySubject[tr.S] = append(bySubject[tr.S], tr)
	}
	for s, trs := range bySubject {
		if len(trs) < 2 || len(queries) > 30 {
			continue
		}
		_ = s
		queries = append(queries, fmt.Sprintf(
			"SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . }",
			trs[0].P, trs[0].O, trs[1].P, trs[1].O))
		if len(trs) >= 3 {
			queries = append(queries, fmt.Sprintf(
				"SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . ?x <%d> <%d> . }",
				trs[0].P, trs[0].O, trs[1].P, trs[1].O, trs[2].P, trs[2].O))
		}
	}
	// Object stars (SP? streams) and mixed groups.
	queries = append(queries,
		"SELECT ?o WHERE { <3> <1> ?o . <5> <2> ?o . }",
		"SELECT ?o WHERE { <3> <0> ?o . ?o <1> ?z . }",
		// empty intersections
		"SELECT ?x WHERE { ?x <0> <5000> . ?x <1> <6000> . }",
		// a group behind a bound prefix
		"SELECT ?x ?y WHERE { ?x <0> ?y . ?y <1> <5> . ?y <2> <7> . }",
	)

	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		want := refExecute(q, d.Triples)
		for name, st := range stores {
			sols := map[string]bool{}
			stats, err := Execute(q, st, func(b Bindings) {
				key := ""
				vars := append([]string(nil), q.Vars...)
				sort.Strings(vars)
				for _, v := range vars {
					key += fmt.Sprintf("%s=%d;", v, b[v])
				}
				sols[key] = true
			})
			if err != nil {
				t.Fatalf("%s %q: %v", name, qs, err)
			}
			if stats.Results != want {
				t.Errorf("%s %q: got %d results, want %d", name, qs, stats.Results, want)
			}
		}
	}
}

// TestGallopedOrderIndependent runs the same star query under every
// pattern order and expects identical result counts.
func TestGallopedOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	ts := randomTriples(rng, 500)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	var tr core.Triple
	for _, c := range d.Triples {
		tr = c
		break
	}
	q, err := Parse(fmt.Sprintf(
		"SELECT ?x WHERE { ?x <%d> <%d> . ?x <%d> <%d> . ?x <%d> <%d> . }",
		tr.P, tr.O, (tr.P+1)%5, tr.O, (tr.P+2)%5, (tr.O+1)%20))
	if err != nil {
		t.Fatal(err)
	}
	want := refExecute(q, d.Triples)
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {0, 2, 1}}
	for _, order := range orders {
		stats, err := ExecuteWithOrder(q, x, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Results != want {
			t.Errorf("order %v: got %d, want %d", order, stats.Results, want)
		}
	}
}
