package sparql

import (
	"math/rand"
	"testing"

	"rdfindexes/internal/core"
)

func TestPlanWithStatsMatchesExecuteResults(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	ts := randomTriples(rng, 500)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT ?x ?y WHERE { ?x <1> ?y . ?y <2> ?z . }",
		"SELECT ?x WHERE { ?x <0> <5> . ?x <1> ?y . }",
		"SELECT ?x ?z WHERE { ?x <3> ?y . ?y <4> ?z . }",
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		defaultStats, err := Execute(q, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		order := PlanWithStats(q, x)
		if len(order) != len(q.Patterns) {
			t.Fatalf("%q: stats plan has %d steps, want %d", qs, len(order), len(q.Patterns))
		}
		seen := map[int]bool{}
		for _, i := range order {
			if i < 0 || i >= len(q.Patterns) || seen[i] {
				t.Fatalf("%q: invalid plan %v", qs, order)
			}
			seen[i] = true
		}
		statsStats, err := ExecuteWithOrder(q, x, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		if statsStats.Results != defaultStats.Results {
			t.Fatalf("%q: stats-planned execution found %d results, default %d",
				qs, statsStats.Results, defaultStats.Results)
		}
	}
}

func TestPlanWithStatsPrefersSelective(t *testing.T) {
	// Predicate 0 has one triple, predicate 1 has many: the stats planner
	// must start with the selective pattern even though both patterns
	// have the same shape.
	var ts []core.Triple
	ts = append(ts, core.Triple{S: 0, P: 0, O: 0})
	for i := 0; i < 200; i++ {
		ts = append(ts, core.Triple{S: core.ID(i % 20), P: 1, O: core.ID(i)})
	}
	d := core.NewDataset(ts)
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT ?x WHERE { ?x <1> ?y . ?x <0> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	order := PlanWithStats(q, x)
	if order[0] != 1 {
		t.Fatalf("stats plan %v does not start with the selective pattern", order)
	}
}
