package sparql_test

import (
	"testing"

	"rdfindexes/internal/core"
	"rdfindexes/internal/gen"
	"rdfindexes/internal/hdt"
	"rdfindexes/internal/rdf3x"
	"rdfindexes/internal/sparql"
	"rdfindexes/internal/triplebit"
)

// TestReplayConsistencyAcrossAllSystems is the Table 6 invariant: the
// same serial decomposition of a query log, replayed on every index
// layout and every baseline, must match exactly the same triples.
func TestReplayConsistencyAcrossAllSystems(t *testing.T) {
	for _, tc := range []struct {
		name    string
		dataset *core.Dataset
		queries []sparql.Query
	}{
		{"watdiv", nil, nil},
		{"lubm", nil, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var d *core.Dataset
			var queries []sparql.Query
			if tc.name == "watdiv" {
				wd := gen.WatDiv(300, 31)
				d = wd.Dataset
				queries = gen.WatDivQueries(wd, 15, 37)
			} else {
				lu := gen.LUBM(2, 41)
				d = lu.Dataset
				queries = gen.LUBMQueries(lu, 15, 43)
			}

			p2, err := core.Build2Tp(d)
			if err != nil {
				t.Fatal(err)
			}
			var patterns []core.Pattern
			for _, q := range queries {
				ps, err := sparql.Decompose(q, p2)
				if err != nil {
					t.Fatal(err)
				}
				patterns = append(patterns, ps...)
			}
			if len(patterns) == 0 {
				t.Fatal("query log decomposed to zero patterns")
			}

			stores := map[string]sparql.Store{"2Tp": p2}
			if x, err := core.Build3T(d); err == nil {
				stores["3T"] = x
			} else {
				t.Fatal(err)
			}
			if x, err := core.BuildCC(d); err == nil {
				stores["CC"] = x
			} else {
				t.Fatal(err)
			}
			if x, err := core.Build2To(d); err == nil {
				stores["2To"] = x
			} else {
				t.Fatal(err)
			}
			if x, err := hdt.Build(d); err == nil {
				stores["HDT-FoQ"] = x
			} else {
				t.Fatal(err)
			}
			if x, err := triplebit.Build(d); err == nil {
				stores["TripleBit"] = x
			} else {
				t.Fatal(err)
			}
			if x, err := rdf3x.Build(d); err == nil {
				stores["RDF-3X"] = x
			} else {
				t.Fatal(err)
			}

			want := sparql.Replay(patterns, p2)
			if want == 0 {
				t.Fatal("replay matched nothing; workload is degenerate")
			}
			for name, st := range stores {
				if got := sparql.Replay(patterns, st); got != want {
					t.Errorf("%s replayed %d matches, want %d", name, got, want)
				}
			}
		})
	}
}
