package sparql

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rdfindexes/internal/core"
)

// TestExecuteContextCompletes checks the context path returns the same
// results as the plain path when nothing cancels.
func TestExecuteContextCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ts := randomTriples(rng, 600)
	st := sliceStore(ts)
	q, err := Parse("SELECT ?x ?y WHERE { ?x <1> ?y . ?y <1> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Execute(q, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ExecuteContext(context.Background(), q, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Results != withCtx.Results || plain.TriplesMatched != withCtx.TriplesMatched {
		t.Fatalf("context path diverged: %+v vs %+v", plain, withCtx)
	}
}

// TestExecuteContextCancellation runs a cross-product-heavy query under
// an already-cancelled context and expects a prompt abort with the
// context's error, with at most one cancellation stride of extra work.
func TestExecuteContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ts := randomTriples(rng, 1200)
	st := sliceStore(ts)
	// Two unrelated pattern pairs force a large intermediate product.
	q, err := Parse("SELECT ?a ?b WHERE { ?a <1> ?x . ?b <2> ?y . }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := ExecuteContext(ctx, q, st, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
	}
	// The check fires every cancelStride candidates; a run that examined
	// many strides past cancellation would mean the check is not wired
	// into the hot loop.
	if stats.TriplesMatched > 2*cancelStride {
		t.Fatalf("cancelled execution still matched %d triples (> 2 strides)", stats.TriplesMatched)
	}
}

// TestExecuteContextDeadlineGallop cancels inside the merge-intersection
// path: patterns sharing their single free variable gallop, and the
// canceller must fire there too.
func TestExecuteContextDeadlineGallop(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ts := randomTriples(rng, 1200)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	x, err := core.Build3T(d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT ?x WHERE { ?x <1> <2> . ?x <2> <3> . }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, q, x, nil); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error %v", err)
	}
	// A nil-emit complete run on the same store for comparison.
	if _, err := ExecuteContext(context.Background(), q, x, nil); err != nil {
		t.Fatalf("uncancelled run failed: %v", err)
	}
}

// TestStreamWithOrderReusesBindings pins the streaming contract: the
// same solutions as ExecuteWithOrder, delivered through one reused map,
// while the Execute family keeps handing out fresh maps (callers retain
// those).
func TestStreamWithOrderReusesBindings(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ts := randomTriples(rng, 600)
	st := sliceStore(ts)
	q, err := Parse("SELECT ?x ?y ?z WHERE { ?x <1> ?y . ?y <1> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	order := Plan(q)
	type row struct{ x, y, z core.ID }
	var want []row
	if _, err := ExecuteWithOrder(q, st, order, func(b Bindings) {
		want = append(want, row{b["x"], b["y"], b["z"]})
	}); err != nil {
		t.Fatal(err)
	}
	var fresh []Bindings
	if _, err := ExecuteWithOrder(q, st, order, func(b Bindings) {
		fresh = append(fresh, b)
	}); err != nil {
		t.Fatal(err)
	}
	for i, b := range fresh {
		if b["x"] != want[i].x || b["y"] != want[i].y || b["z"] != want[i].z {
			t.Fatalf("Execute retained map %d mutated: %v, want %v", i, b, want[i])
		}
	}
	var got []row
	var prev Bindings
	if _, err := StreamWithOrder(context.Background(), q, st, order, func(b Bindings) {
		if prev != nil && reflect.ValueOf(b).Pointer() != reflect.ValueOf(prev).Pointer() {
			t.Fatal("StreamWithOrder allocated a fresh bindings map")
		}
		prev = b //rdf:allow(test asserts the executor reuses one map; retaining it is the point)
		got = append(got, row{b["x"], b["y"], b["z"]})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream row %d = %v, want %v", i, got[i], want[i])
		}
	}
}
