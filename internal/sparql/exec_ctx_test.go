package sparql

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"rdfindexes/internal/core"
)

// TestExecuteContextCompletes checks the context path returns the same
// results as the plain path when nothing cancels.
func TestExecuteContextCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ts := randomTriples(rng, 600)
	st := sliceStore(ts)
	q, err := Parse("SELECT ?x ?y WHERE { ?x <1> ?y . ?y <1> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Execute(q, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ExecuteContext(context.Background(), q, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Results != withCtx.Results || plain.TriplesMatched != withCtx.TriplesMatched {
		t.Fatalf("context path diverged: %+v vs %+v", plain, withCtx)
	}
}

// TestExecuteContextCancellation runs a cross-product-heavy query under
// an already-cancelled context and expects a prompt abort with the
// context's error, with at most one cancellation stride of extra work.
func TestExecuteContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ts := randomTriples(rng, 1200)
	st := sliceStore(ts)
	// Two unrelated pattern pairs force a large intermediate product.
	q, err := Parse("SELECT ?a ?b WHERE { ?a <1> ?x . ?b <2> ?y . }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := ExecuteContext(ctx, q, st, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
	}
	// The check fires every cancelStride candidates; a run that examined
	// many strides past cancellation would mean the check is not wired
	// into the hot loop.
	if stats.TriplesMatched > 2*cancelStride {
		t.Fatalf("cancelled execution still matched %d triples (> 2 strides)", stats.TriplesMatched)
	}
}

// TestExecuteContextDeadlineGallop cancels inside the merge-intersection
// path: patterns sharing their single free variable gallop, and the
// canceller must fire there too.
func TestExecuteContextDeadlineGallop(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ts := randomTriples(rng, 1200)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	x, err := core.Build3T(d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT ?x WHERE { ?x <1> <2> . ?x <2> <3> . }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, q, x, nil); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error %v", err)
	}
	// A nil-emit complete run on the same store for comparison.
	if _, err := ExecuteContext(context.Background(), q, x, nil); err != nil {
		t.Fatalf("uncancelled run failed: %v", err)
	}
}
