// Package sparql implements the small SPARQL fragment the paper's final
// experiment needs (Table 6): basic graph patterns (BGPs) of triple
// patterns over integer IDs, a selectivity-driven query planner that
// serializes a BGP into a sequence of atomic triple selection patterns —
// the same methodology the paper borrows from TripleBit's planner — and a
// nested-loop executor that runs the decomposition against any index.
//
// Syntax accepted by Parse (IDs stand in for dictionary-encoded IRIs):
//
//	SELECT ?x ?y WHERE { ?x <3> ?y . ?y <5> <120> . }
//
// Variables are ?name tokens; constants are <id> with a decimal ID.
package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"rdfindexes/internal/core"
)

// Term is a variable or a constant ID in a triple pattern.
type Term struct {
	// Var is the variable name, empty for constants.
	Var string
	// ID is the constant value when Var is empty.
	ID core.ID
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in query syntax.
func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return fmt.Sprintf("<%d>", t.ID)
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(id core.ID) Term { return Term{ID: id} }

// TriplePattern is one pattern of a BGP.
type TriplePattern struct {
	S, P, O Term
}

// String renders the pattern in query syntax.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%v %v %v .", tp.S, tp.P, tp.O)
}

// Query is a basic graph pattern with a projection list.
type Query struct {
	Vars     []string
	Patterns []TriplePattern
}

// String renders the query in the accepted syntax.
func (q Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT")
	for _, v := range q.Vars {
		sb.WriteString(" ?")
		sb.WriteString(v)
	}
	sb.WriteString(" WHERE {")
	for _, p := range q.Patterns {
		sb.WriteString(" ")
		sb.WriteString(p.String())
	}
	sb.WriteString(" }")
	return sb.String()
}

// Parse parses a query in the accepted fragment.
func Parse(input string) (Query, error) {
	toks, err := tokenize(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

type token struct {
	kind string // "kw", "var", "id", "punct"
	text string
	id   core.ID
}

func tokenize(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '{' || c == '}' || c == '.':
			toks = append(toks, token{kind: "punct", text: string(c)})
			i++
		case c == '?':
			j := i + 1
			for j < len(input) && isNameChar(input[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", i)
			}
			toks = append(toks, token{kind: "var", text: input[i+1 : j]})
			i = j
		case c == '<':
			j := strings.IndexByte(input[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("sparql: unterminated <...> at offset %d", i)
			}
			body := input[i+1 : i+j]
			id, err := strconv.ParseUint(body, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("sparql: constant %q is not a numeric ID (dictionary-encode IRIs first)", body)
			}
			toks = append(toks, token{kind: "id", id: core.ID(id)})
			i += j + 1
		default:
			j := i
			for j < len(input) && isNameChar(input[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, token{kind: "kw", text: strings.ToUpper(input[i:j])})
			i = j
		}
	}
	return toks, nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) next() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	t := p.toks[p.pos]
	p.pos++
	return t, true
}

func (p *parser) expectKw(kw string) error {
	t, ok := p.next()
	if !ok || t.kind != "kw" || t.text != kw {
		return fmt.Errorf("sparql: expected %s", kw)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t, ok := p.next()
	if !ok || t.kind != "punct" || t.text != s {
		return fmt.Errorf("sparql: expected %q", s)
	}
	return nil
}

func (p *parser) parseQuery() (Query, error) {
	var q Query
	if err := p.expectKw("SELECT"); err != nil {
		return q, err
	}
	for p.pos < len(p.toks) && p.toks[p.pos].kind == "var" {
		q.Vars = append(q.Vars, p.toks[p.pos].text)
		p.pos++
	}
	if len(q.Vars) == 0 {
		return q, fmt.Errorf("sparql: SELECT needs at least one variable")
	}
	if err := p.expectKw("WHERE"); err != nil {
		return q, err
	}
	if err := p.expectPunct("{"); err != nil {
		return q, err
	}
	for p.pos < len(p.toks) && !(p.toks[p.pos].kind == "punct" && p.toks[p.pos].text == "}") {
		var terms [3]Term
		for k := 0; k < 3; k++ {
			t, ok := p.next()
			if !ok {
				return q, fmt.Errorf("sparql: truncated triple pattern")
			}
			switch t.kind {
			case "var":
				terms[k] = V(t.text)
			case "id":
				terms[k] = C(t.id)
			default:
				return q, fmt.Errorf("sparql: unexpected token %q in triple pattern", t.text)
			}
		}
		if err := p.expectPunct("."); err != nil {
			return q, err
		}
		q.Patterns = append(q.Patterns, TriplePattern{terms[0], terms[1], terms[2]})
	}
	if err := p.expectPunct("}"); err != nil {
		return q, err
	}
	if len(q.Patterns) == 0 {
		return q, fmt.Errorf("sparql: empty BGP")
	}
	// Projection variables must occur in the BGP.
	bound := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, t := range []Term{tp.S, tp.P, tp.O} {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, v := range q.Vars {
		if !bound[v] {
			return q, fmt.Errorf("sparql: projected variable ?%s not used in the BGP", v)
		}
	}
	return q, nil
}
