package sparql

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rdfindexes/internal/core"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("SELECT ?x ?y WHERE { ?x <3> ?y . ?y <5> <120> . }")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Vars, []string{"x", "y"}) {
		t.Fatalf("Vars = %v", q.Vars)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("got %d patterns", len(q.Patterns))
	}
	want0 := TriplePattern{V("x"), C(3), V("y")}
	if q.Patterns[0] != want0 {
		t.Fatalf("pattern 0 = %v", q.Patterns[0])
	}
	want1 := TriplePattern{V("y"), C(5), C(120)}
	if q.Patterns[1] != want1 {
		t.Fatalf("pattern 1 = %v", q.Patterns[1])
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	q, err := Parse("SELECT ?a WHERE { ?a <0> <7> . <4> <1> ?a . }")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Fatalf("round trip mismatch: %v vs %v", q, q2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT WHERE { ?x <1> ?y . }",      // no projection
		"SELECT ?x WHERE { }",               // empty BGP
		"SELECT ?x WHERE { ?x <1> ?y }",     // missing dot
		"SELECT ?z WHERE { ?x <1> ?y . }",   // unbound projection
		"SELECT ?x WHERE { ?x <abc> ?y . }", // non-numeric constant
		"SELECT ?x WHERE { ?x <1 ?y . }",    // unterminated IRI
		"SELECT ?x { ?x <1> ?y . }",         // missing WHERE
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse accepted %q", s)
		}
	}
}

// sliceStore is a brute-force Store for oracle checks.
type sliceStore []core.Triple

func (s sliceStore) NumTriples() int { return len(s) }
func (s sliceStore) Select(p core.Pattern) *core.Iterator {
	i := 0
	return core.NewIterator(func() (core.Triple, bool) {
		for i < len(s) {
			t := s[i]
			i++
			if p.Matches(t) {
				return t, true
			}
		}
		return core.Triple{}, false
	})
}

// refExecute evaluates a BGP by brute force over all variable
// assignments implied by the triples.
func refExecute(q Query, ts []core.Triple) int {
	var count int
	var rec func(step int, b Bindings)
	rec = func(step int, b Bindings) {
		if step == len(q.Patterns) {
			count++
			return
		}
		tp := q.Patterns[step]
		for _, t := range ts {
			nb := Bindings{}
			for k, v := range b {
				nb[k] = v
			}
			ok := true
			bind := func(term Term, id core.ID) {
				if !ok {
					return
				}
				if !term.IsVar() {
					if term.ID != id {
						ok = false
					}
					return
				}
				if prev, bound := nb[term.Var]; bound {
					if prev != id {
						ok = false
					}
					return
				}
				nb[term.Var] = id
			}
			bind(tp.S, t.S)
			bind(tp.P, t.P)
			bind(tp.O, t.O)
			if ok {
				rec(step+1, nb)
			}
		}
	}
	rec(0, Bindings{})
	return count
}

func randomTriples(rng *rand.Rand, n int) []core.Triple {
	seen := map[core.Triple]bool{}
	var ts []core.Triple
	for len(ts) < n {
		t := core.Triple{
			S: core.ID(rng.Intn(20)),
			P: core.ID(rng.Intn(5)),
			O: core.ID(rng.Intn(20)),
		}
		if !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	return ts
}

func TestExecuteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	ts := randomTriples(rng, 300)
	store := sliceStore(ts)
	queries := []string{
		"SELECT ?x WHERE { ?x <1> ?y . }",
		"SELECT ?x ?y WHERE { ?x <1> ?y . ?y <2> ?z . }",
		"SELECT ?x WHERE { ?x <0> <5> . ?x <1> ?y . }",
		"SELECT ?x ?z WHERE { ?x <3> ?y . ?y <4> ?z . ?z <0> ?w . }",
		"SELECT ?x WHERE { ?x <2> ?x . }", // self-join within a pattern
		"SELECT ?x ?y WHERE { ?x <0> ?y . ?y <0> ?x . }",
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		stats, err := Execute(q, store, nil)
		if err != nil {
			t.Fatalf("%q: %v", qs, err)
		}
		want := refExecute(q, ts)
		if stats.Results != want {
			t.Fatalf("%q: got %d results, want %d", qs, stats.Results, want)
		}
	}
}

func TestExecuteAgainstRealIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	ts := randomTriples(rng, 500)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	store := sliceStore(d.Triples)
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT ?x ?z WHERE { ?x <1> ?y . ?y <2> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	bruteStats, err := Execute(q, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	var solutions []Bindings
	idxStats, err := Execute(q, x, func(b Bindings) { solutions = append(solutions, b) })
	if err != nil {
		t.Fatal(err)
	}
	if idxStats.Results != bruteStats.Results || len(solutions) != idxStats.Results {
		t.Fatalf("index execution: %d results, brute force: %d", idxStats.Results, bruteStats.Results)
	}
}

func TestPlanOrdersSelectiveFirst(t *testing.T) {
	q, err := Parse("SELECT ?x WHERE { ?x <1> ?y . ?x <0> <5> . }")
	if err != nil {
		t.Fatal(err)
	}
	order := Plan(q)
	if order[0] != 1 {
		t.Fatalf("plan order %v: expected the ?PO pattern first", order)
	}
}

func TestPlanAvoidsCartesian(t *testing.T) {
	// Patterns 0/2 share ?x, pattern 1 is disconnected but selective;
	// after starting with pattern 0 or 2 the planner must prefer the
	// sharing pattern over the disconnected one when costs allow.
	q, err := Parse("SELECT ?x WHERE { ?x <0> <5> . ?a <1> <6> . ?x <2> ?y . }")
	if err != nil {
		t.Fatal(err)
	}
	order := Plan(q)
	// First two picks must include both ?PO patterns; the key property is
	// that ?x <2> ?y never runs before ?x <0> <5>.
	posBound := -1
	posOpen := -1
	for i, idx := range order {
		if idx == 0 {
			posBound = i
		}
		if idx == 2 {
			posOpen = i
		}
	}
	if posOpen < posBound {
		t.Fatalf("plan %v runs open pattern before its selective anchor", order)
	}
}

func TestDecomposeReplayMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(197))
	ts := randomTriples(rng, 400)
	d := core.NewDataset(append([]core.Triple(nil), ts...))
	x, err := core.Build2Tp(d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT ?x ?z WHERE { ?x <1> ?y . ?y <2> ?z . }")
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := Decompose(q, x)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(q, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != stats.PatternsIssued {
		t.Fatalf("decomposition has %d patterns, execution issued %d",
			len(patterns), stats.PatternsIssued)
	}
	if got := Replay(patterns, x); got != stats.TriplesMatched {
		t.Fatalf("replay matched %d triples, execution matched %d",
			got, stats.TriplesMatched)
	}
}
