package sparql

import (
	"context"

	"rdfindexes/internal/core"
	"rdfindexes/internal/obs"
)

// Store is the index capability the executor needs; all index layouts in
// this repository and the baseline systems satisfy it.
type Store interface {
	Select(core.Pattern) *core.Iterator
	NumTriples() int
}

// Bindings maps variable names to IDs.
type Bindings map[string]core.ID

// ExecStats reports the work done by an execution: the serial
// decomposition length (number of atomic triple selection patterns
// issued) and the number of triples they matched. Table 6 of the paper
// measures exactly this decomposition's raw index speed. When a group of
// patterns is resolved by a merge-intersection instead of nested
// iteration, TriplesMatched counts only the intersected matches — the
// skipped candidates are exactly the work the join optimization saves.
type ExecStats struct {
	PatternsIssued int
	TriplesMatched int
	Results        int
}

// shapeCost ranks pattern shapes by expected selectivity; used to order
// the BGP greedily, most selective first, as TripleBit's planner does for
// the paper's benchmark.
func shapeCost(s core.Shape) int {
	switch s {
	case core.ShapeSPO:
		return 1
	case core.ShapeSxO:
		return 4
	case core.ShapeSPx:
		return 8
	case core.ShapexPO:
		return 8
	case core.ShapeSxx:
		return 64
	case core.ShapexxO:
		return 64
	case core.ShapexPx:
		return 4096
	default:
		return 1 << 20
	}
}

// substitute resolves a triple pattern against bindings, producing the
// concrete selection pattern and the still-free variable slots.
func substitute(tp TriplePattern, b Bindings) core.Pattern {
	conv := func(t Term) core.ID {
		if !t.IsVar() {
			return t.ID
		}
		if id, ok := b[t.Var]; ok {
			return id
		}
		return core.Wildcard
	}
	return core.Pattern{S: conv(tp.S), P: conv(tp.P), O: conv(tp.O)}
}

// PlanWithStats orders the BGP's patterns like Plan but replaces the
// static shape costs with measured cardinalities from the store: the cost
// of a pattern is its actual match count under the currently bound
// prefix, probed once per planning step. This is the direction the paper
// lists as future work ("devising a novel query planning algorithm");
// the executor accepts either order.
func PlanWithStats(q Query, st Store) []int {
	n := len(q.Patterns)
	used := make([]bool, n)
	boundVars := map[string]bool{}
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestCost := -1, int(^uint(0)>>1)
		for i, tp := range q.Patterns {
			if used[i] {
				continue
			}
			fake := Bindings{}
			for v := range boundVars {
				fake[v] = 0
			}
			shape := substitute(tp, fake).Shape()
			// Probe the real cardinality for the unbound version of the
			// pattern (constants only); bound variables are treated as
			// fixed by halving per bound position, a cheap refinement.
			probe := substitute(tp, Bindings{})
			cost := countUpTo(st, probe, 1<<16)
			if cost == 0 {
				cost = 1
			}
			divisor := 1
			for _, term := range []Term{tp.S, tp.P, tp.O} {
				if term.IsVar() && boundVars[term.Var] {
					divisor *= 64
				}
			}
			cost /= divisor
			if cost < 1 {
				cost = 1
			}
			_ = shape
			shares := false
			for _, t := range []Term{tp.S, tp.P, tp.O} {
				if t.IsVar() && boundVars[t.Var] {
					shares = true
				}
			}
			if len(order) > 0 && !shares {
				cost *= 1 << 16
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		used[best] = true
		for _, t := range []Term{q.Patterns[best].S, q.Patterns[best].P, q.Patterns[best].O} {
			if t.IsVar() {
				boundVars[t.Var] = true
			}
		}
	}
	return order
}

// countUpTo counts matches of p, stopping at limit.
func countUpTo(st Store, p core.Pattern, limit int) int {
	it := st.Select(p)
	n := 0
	for n < limit {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	return n
}

// ExecuteWithOrder runs the query with an explicit evaluation order.
func ExecuteWithOrder(q Query, st Store, order []int, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(nil, q, st, order, nil, emit, false)
}

// ExecuteContext runs the query like Execute but aborts with ctx.Err()
// when the context is cancelled or its deadline passes. Cancellation is
// checked once per iteration batch (every cancelStride candidate
// triples), not per triple, so the hot loops stay branch-cheap; a runaway
// query therefore overshoots its deadline by at most one stride.
func ExecuteContext(ctx context.Context, q Query, st Store, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(ctx, q, st, Plan(q), nil, emit, false)
}

// ExecuteWithOrderContext is ExecuteWithOrder with cancellation.
func ExecuteWithOrderContext(ctx context.Context, q Query, st Store, order []int, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(ctx, q, st, order, nil, emit, false)
}

// StreamWithOrder is ExecuteWithOrderContext for streaming consumers:
// one Bindings map is reused across emit calls, so a solution-heavy
// query allocates nothing per row in the executor. The map passed to
// emit is valid only for the duration of the callback and must not be
// retained or mutated; consumers that keep solutions use the Execute
// family instead. A nil ctx disables cancellation.
//
//rdf:nonretaining
func StreamWithOrder(ctx context.Context, q Query, st Store, order []int, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(ctx, q, st, order, nil, emit, true)
}

// StreamTraced is StreamWithOrder with per-pattern cardinality
// recording: execution step i (plan position) of the order records into
// tr's step i — its pattern index, candidates scanned and candidates
// matched, with Gallop set for steps resolved inside a
// merge-intersection. The recorders are nil-safe no-ops unless the
// caller armed tr with EnableSteps, so the untraced cost is one
// predictable branch per candidate. The emit contract is
// StreamWithOrder's.
//
//rdf:nonretaining
func StreamTraced(ctx context.Context, q Query, st Store, order []int, tr *obs.Trace, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(ctx, q, st, order, tr, emit, true)
}

// cancelStride is the number of candidate triples examined between two
// context checks.
const cancelStride = 1024

// canceller polls a context every cancelStride ticks; a nil canceller or
// a nil context never fires.
type canceller struct {
	ctx context.Context
	n   uint32
}

func (c *canceller) check() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	c.n++
	if c.n%cancelStride != 0 {
		return nil
	}
	return c.ctx.Err()
}

// Plan orders the BGP's patterns greedily: at each step, pick the pattern
// whose shape (under the bindings accumulated so far) is cheapest. It
// returns the evaluation order as indexes into q.Patterns.
func Plan(q Query) []int {
	n := len(q.Patterns)
	used := make([]bool, n)
	boundVars := map[string]bool{}
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestCost := -1, 1<<62
		for i, tp := range q.Patterns {
			if used[i] {
				continue
			}
			// Shape assuming bound variables are constants.
			fake := Bindings{}
			for v := range boundVars {
				fake[v] = 0
			}
			cost := shapeCost(substitute(tp, fake).Shape())
			// Prefer patterns sharing a variable with what is bound
			// (avoids Cartesian products).
			shares := false
			for _, t := range []Term{tp.S, tp.P, tp.O} {
				if t.IsVar() && boundVars[t.Var] {
					shares = true
				}
			}
			if len(order) > 0 && !shares {
				cost *= 1 << 10
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		used[best] = true
		for _, t := range []Term{q.Patterns[best].S, q.Patterns[best].P, q.Patterns[best].O} {
			if t.IsVar() {
				boundVars[t.Var] = true
			}
		}
	}
	return order
}

// Execute runs the query against the store with nested-loop joins over
// the planned order and invokes emit for every solution. It returns the
// execution statistics.
func Execute(q Query, st Store, emit func(Bindings)) (ExecStats, error) {
	return executeOrdered(nil, q, st, Plan(q), nil, emit, false)
}

// singleFreeVar reports the variable of tp that is still unbound under
// b, provided it occupies exactly one component slot and no other slot
// is free.
func singleFreeVar(tp TriplePattern, b Bindings) (string, bool) {
	name := ""
	slots := 0
	for _, t := range []Term{tp.S, tp.P, tp.O} {
		if !t.IsVar() {
			continue
		}
		if _, bound := b[t.Var]; bound {
			continue
		}
		slots++
		if name == "" {
			name = t.Var
		} else if name != t.Var {
			return "", false
		}
	}
	return name, slots == 1
}

// bindTerm binds one pattern term against one result component:
// variables already bound must agree (consistent duplicates in the same
// pattern, e.g. ?x <p> ?x), fresh variables are recorded in nv so the
// caller can unbind them. A top-level function instead of a closure so
// the per-candidate hot loop allocates nothing.
func bindTerm(b Bindings, term Term, id core.ID, nv *[3]string, nvn *int) bool {
	if !term.IsVar() {
		return true
	}
	if prev, bound := b[term.Var]; bound {
		return prev == id
	}
	b[term.Var] = id
	nv[*nvn] = term.Var
	*nvn++
	return true
}

// executeOrdered evaluates the BGP over an explicit pattern order:
// nested-loop joins, except that maximal runs of consecutive patterns
// sharing their single free variable are resolved with a leapfrog
// merge-intersection of the sorted binding streams the index serves
// natively (core.VarSelecter), skipping over non-joining candidates with
// NextGEQ instead of enumerating them. With reuseEmit, one output map is
// cleared and refilled per solution instead of allocated fresh.
func executeOrdered(ctx context.Context, q Query, st Store, order []int, tr *obs.Trace, emit func(Bindings), reuseEmit bool) (ExecStats, error) {
	var stats ExecStats
	bindings := Bindings{}
	out := Bindings{}
	vs, hasVS := st.(core.VarSelecter)
	var cancel *canceller
	if ctx != nil {
		cancel = &canceller{ctx: ctx}
	}
	// Per-step scratch for the variables each recursion level binds;
	// hoisted out of the candidate loop so the hot path stays
	// allocation-free.
	newVars := make([][3]string, len(order))
	var rec func(step int) error
	rec = func(step int) error {
		if step == len(order) {
			stats.Results++
			if emit != nil {
				if reuseEmit {
					clear(out)
				} else {
					out = Bindings{}
				}
				for _, v := range q.Vars {
					if id, ok := bindings[v]; ok {
						out[v] = id
					}
				}
				emit(out)
			}
			return nil
		}
		tp := q.Patterns[order[step]]
		pat := substitute(tp, bindings)
		// A gallop group needs at least two patterns, so the innermost
		// step (the hot path of the recursion) skips detection entirely.
		if hasVS && step+1 < len(order) {
			if v, ok := singleFreeVar(tp, bindings); ok {
				group := []core.Pattern{pat}
				for g := step + 1; g < len(order); g++ {
					tp2 := q.Patterns[order[g]]
					if v2, ok2 := singleFreeVar(tp2, bindings); !ok2 || v2 != v {
						break
					}
					group = append(group, substitute(tp2, bindings))
				}
				if len(group) >= 2 {
					if done, err := execGallop(vs, group, v, bindings, &stats, cancel, tr, step, order, func() error {
						return rec(step + len(group))
					}); done {
						return err
					}
				}
			}
		}
		stats.PatternsIssued++
		tr.StepIssued(step, order[step], false)
		it := st.Select(pat)
		nv := &newVars[step]
		for {
			t, ok := it.Next()
			if !ok {
				return nil
			}
			stats.TriplesMatched++
			tr.StepScanned(step)
			if err := cancel.check(); err != nil {
				return err
			}
			nvn := 0
			okBind := bindTerm(bindings, tp.S, t.S, nv, &nvn) &&
				bindTerm(bindings, tp.P, t.P, nv, &nvn) &&
				bindTerm(bindings, tp.O, t.O, nv, &nvn)
			if okBind {
				tr.StepMatched(step)
				if err := rec(step + 1); err != nil {
					return err
				}
			}
			for i := 0; i < nvn; i++ {
				delete(bindings, nv[i])
			}
		}
	}
	if err := rec(0); err != nil {
		return stats, err
	}
	return stats, nil
}

// execGallop intersects the sorted binding streams of a group of
// patterns that share their single free variable v, invoking found for
// every common value with v bound. done is false when the store cannot
// serve one of the streams (the caller falls back to nested iteration).
func execGallop(vs core.VarSelecter, group []core.Pattern, v string,
	bindings Bindings, stats *ExecStats, cancel *canceller, tr *obs.Trace, step int, order []int, found func() error) (done bool, err error) {
	its := make([]*core.VarIter, len(group))
	for i, p := range group {
		it, ok := vs.SelectVarSorted(p)
		if !ok {
			return false, nil
		}
		its[i] = it
	}
	stats.PatternsIssued += len(group)
	if tr != nil {
		for i := range group {
			tr.StepIssued(step+i, order[step+i], true)
		}
	}
	// Leapfrog: keep one candidate per stream; advance every stream below
	// the maximum with a NextGEQ skip, and report when all candidates
	// agree. Values are distinct within a stream, so each agreement is
	// exactly one solution.
	cand := make([]core.ID, len(its))
	for i, it := range its {
		c, ok := it.Next()
		tr.StepScanned(step + i)
		if !ok {
			return true, nil
		}
		cand[i] = c
	}
	for {
		if err := cancel.check(); err != nil {
			return true, err
		}
		maxv := cand[0]
		for _, c := range cand[1:] {
			if c > maxv {
				maxv = c
			}
		}
		agree := true
		for i, it := range its {
			if cand[i] < maxv {
				c, ok := it.NextGEQ(maxv)
				tr.StepScanned(step + i)
				if !ok {
					return true, nil
				}
				cand[i] = c
				if c != maxv {
					agree = false
				}
			}
		}
		if !agree {
			continue
		}
		stats.TriplesMatched += len(group)
		if tr != nil {
			for i := range its {
				tr.StepMatched(step + i)
			}
		}
		bindings[v] = maxv
		err := found()
		delete(bindings, v)
		if err != nil {
			return true, err
		}
		c, ok := its[0].Next()
		tr.StepScanned(step)
		if !ok {
			return true, nil
		}
		cand[0] = c
	}
}

// Decompose runs the query and returns the sequence of atomic selection
// patterns it issued, in execution order. This is the paper's Table 6
// methodology: the same decomposition is replayed against each index so
// that all systems execute identical pattern sequences.
func Decompose(q Query, st Store) ([]core.Pattern, error) {
	order := Plan(q)
	var issued []core.Pattern
	bindings := Bindings{}
	var rec func(step int)
	rec = func(step int) {
		if step == len(order) {
			return
		}
		tp := q.Patterns[order[step]]
		pat := substitute(tp, bindings)
		issued = append(issued, pat)
		it := st.Select(pat)
		for {
			t, ok := it.Next()
			if !ok {
				return
			}
			newVars := make([]string, 0, 3)
			okBind := true
			tryBind := func(term Term, id core.ID) {
				if !okBind || !term.IsVar() {
					return
				}
				if prev, bound := bindings[term.Var]; bound {
					if prev != id {
						okBind = false
					}
					return
				}
				bindings[term.Var] = id
				newVars = append(newVars, term.Var)
			}
			tryBind(tp.S, t.S)
			tryBind(tp.P, t.P)
			tryBind(tp.O, t.O)
			if okBind {
				rec(step + 1)
			}
			for _, v := range newVars {
				delete(bindings, v)
			}
		}
	}
	rec(0)
	return issued, nil
}

// Replay executes a pre-computed pattern decomposition against a store,
// draining every iterator, and returns the total matches. All indexes
// replay the same sequence, which is how Table 6 compares raw speed.
func Replay(patterns []core.Pattern, st Store) int {
	total := 0
	for _, p := range patterns {
		it := st.Select(p)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			total++
		}
	}
	return total
}
