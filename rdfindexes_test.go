package rdfindexes

import (
	"bytes"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	d, err := GenerateDataset("dblp", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{Layout3T, LayoutCC, Layout2Tp, Layout2To} {
		x, err := Build(d, layout)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if x.NumTriples() != d.Len() {
			t.Fatalf("%v: NumTriples = %d, want %d", layout, x.NumTriples(), d.Len())
		}
		if bpt := BitsPerTriple(x); bpt <= 0 || bpt > 500 {
			t.Fatalf("%v: implausible bits/triple %v", layout, bpt)
		}
		tr := d.Triples[42]
		if !Lookup(x, tr) {
			t.Fatalf("%v: Lookup lost %v", layout, tr)
		}
		if got := Count(x, NewPattern(int(tr.S), -1, -1)); got == 0 {
			t.Fatalf("%v: S?? returned nothing", layout)
		}
		var buf bytes.Buffer
		if err := WriteIndex(&buf, x); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Lookup(loaded, tr) {
			t.Fatalf("%v: reloaded index lost %v", layout, tr)
		}
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	d, err := GenerateDataset("lubm", 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NS != d.NS || got.NP != d.NP || got.NO != d.NO {
		t.Fatal("dataset header mismatch after round trip")
	}
	for i := range d.Triples {
		if d.Triples[i] != got.Triples[i] {
			t.Fatalf("triple %d mismatch: %v vs %v", i, d.Triples[i], got.Triples[i])
		}
	}
}

func TestFacadeRangeQueries(t *testing.T) {
	// Objects 10..29 are numeric with values 100, 102, ..., 138.
	var triples []Triple
	values := make([]uint64, 20)
	for k := 0; k < 20; k++ {
		values[k] = uint64(100 + 2*k)
		triples = append(triples, Triple{S: ID(k % 7), P: 0, O: ID(10 + k)})
	}
	d := NewDataset(triples)
	built, err := Build(d, Layout2Tp)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := built.(RangeSelecter)
	if !ok {
		t.Fatal("2Tp does not implement RangeSelecter")
	}
	r := NewR(10, values)
	got := SelectValueRange(x, r, 0, 104, 110).Collect(-1)
	if len(got) != 4 { // values 104, 106, 108, 110
		t.Fatalf("range [104, 110] returned %d matches, want 4", len(got))
	}
	for _, tr := range got {
		v := r.Value(tr.O)
		if v < 104 || v > 110 {
			t.Fatalf("match %v has out-of-range value %d", tr, v)
		}
	}
}

func TestDatasetPresets(t *testing.T) {
	if len(DatasetPresets()) != 6 {
		t.Fatalf("expected the paper's six presets, got %v", DatasetPresets())
	}
	if _, err := GenerateDataset("unknown", 10, 1); err == nil {
		t.Fatal("GenerateDataset accepted unknown preset")
	}
}
