# Developer entrypoints. CI runs the same commands (see
# .github/workflows/ci.yml); `make lint` is the local equivalent of the
# lint job.

GO      ?= go
RDFLINT := $(CURDIR)/bin/rdflint

.PHONY: all build test race lint rdflint fmt vet staticcheck govulncheck clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Full local gate: formatting, stock vet, the repo's own vettool, and
# the escape-analysis gate. staticcheck and govulncheck need network
# access to fetch their module / vulnerability DB, so they are invoked
# only when the tools resolve — offline runs still get everything that
# matters for the repo invariants.
lint: fmt vet rdflint
	$(GO) vet -vettool=$(RDFLINT) ./...
	$(GO) test -run 'TestEscapeGate' ./internal/analysis
	$(MAKE) staticcheck govulncheck

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

rdflint:
	$(GO) build -o $(RDFLINT) ./cmd/rdflint

staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...; \
	else \
		echo "staticcheck unavailable (offline?); skipping — CI runs it"; \
	fi

govulncheck:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@latest -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...; \
	else \
		echo "govulncheck unavailable (offline?); skipping — CI runs it"; \
	fi

clean:
	rm -rf bin
